package core

import (
	"testing"

	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// bruteOptJoin enumerates every possible sequence of cache states over short
// deterministic streams and returns the maximum total join count. A cache
// state is a set of (stream, arrival-time) tuples; at each step the arrivals
// join the cache, then any subset of {cache ∪ arrivals} of size ≤ k is kept,
// with the restriction that only tuples present (cached or arriving) may be
// kept — evicted and skipped tuples are gone forever.
func bruteOptJoin(r, s []int, k int, window int) int {
	n := len(r)
	type tup struct {
		stream  StreamID
		arrived int
	}
	valueOf := func(t tup) int {
		if t.stream == StreamR {
			return r[t.arrived]
		}
		return s[t.arrived]
	}
	var best int
	var rec func(t int, cache []tup, acc int)
	rec = func(t int, cache []tup, acc int) {
		if t == n {
			if acc > best {
				best = acc
			}
			return
		}
		arrivals := []tup{{StreamR, t}, {StreamS, t}}
		// Joins: each arrival vs cached tuples of the other stream.
		gained := 0
		for _, a := range arrivals {
			for _, c := range cache {
				if c.stream != a.stream && valueOf(c) == valueOf(a) {
					if window <= 0 || t-c.arrived <= window {
						gained++
					}
				}
			}
		}
		// Choose the next cache state: any subset of cache ∪ arrivals with
		// size ≤ k.
		pool := append(append([]tup(nil), cache...), arrivals...)
		m := len(pool)
		for mask := 0; mask < 1<<m; mask++ {
			cnt := 0
			for i := 0; i < m; i++ {
				if mask&(1<<i) != 0 {
					cnt++
				}
			}
			if cnt > k {
				continue
			}
			next := make([]tup, 0, cnt)
			for i := 0; i < m; i++ {
				if mask&(1<<i) != 0 {
					next = append(next, pool[i])
				}
			}
			rec(t+1, next, acc+gained)
		}
	}
	rec(0, nil, 0)
	return best
}

func TestOptOfflineTrivial(t *testing.T) {
	// R produces 1 at t=0; S produces 1 at t=1: caching R's tuple yields one
	// join at time 1.
	res := OptOfflineJoin([]int{1, 9}, []int{8, 1}, 1, 0)
	if res.Total != 1 {
		t.Fatalf("Total = %d, want 1", res.Total)
	}
	if len(res.JoinTimes) != 1 || res.JoinTimes[0] != 1 {
		t.Fatalf("JoinTimes = %v, want [1]", res.JoinTimes)
	}
}

func TestOptOfflineCountAfter(t *testing.T) {
	res := OptOfflineResult{Total: 3, JoinTimes: []int{2, 5, 9}}
	if got := res.CountAfter(1); got != 3 {
		t.Fatalf("CountAfter(1) = %d", got)
	}
	if got := res.CountAfter(2); got != 2 {
		t.Fatalf("CountAfter(2) = %d", got)
	}
	if got := res.CountAfter(9); got != 0 {
		t.Fatalf("CountAfter(9) = %d", got)
	}
}

func TestOptOfflineEmptyAndDegenerate(t *testing.T) {
	if res := OptOfflineJoin(nil, nil, 3, 0); res.Total != 0 {
		t.Fatalf("empty streams: %+v", res)
	}
	if res := OptOfflineJoin([]int{1}, []int{2}, 0, 0); res.Total != 0 {
		t.Fatalf("zero cache: %+v", res)
	}
	// Mismatched lengths panic.
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	OptOfflineJoin([]int{1, 2}, []int{1}, 1, 0)
}

func TestOptOfflineMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(314)
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.IntN(3)    // stream length 3..5
		k := 1 + rng.IntN(2)    // cache 1..2
		vals := 1 + rng.IntN(3) // small value domain to force collisions
		r := make([]int, n)
		s := make([]int, n)
		for i := 0; i < n; i++ {
			r[i] = rng.IntN(vals)
			s[i] = rng.IntN(vals)
		}
		window := 0
		if rng.IntN(2) == 1 {
			window = 1 + rng.IntN(3)
		}
		want := bruteOptJoin(r, s, k, window)
		got := OptOfflineJoin(r, s, k, window)
		if got.Total != want {
			t.Fatalf("trial %d: r=%v s=%v k=%d w=%d: flow %d != brute %d",
				trial, r, s, k, window, got.Total, want)
		}
	}
}

// Cross-validation against the dense FlowExpect graph: with deterministic
// processes and a look-ahead covering the whole stream, FlowExpect's first
// decision value equals the offline optimum's benefit from t0+1 on.
func TestOptOfflineMatchesDenseFlowGraph(t *testing.T) {
	rng := stats.NewRNG(7177)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.IntN(2)
		k := 1 + rng.IntN(2)
		r := make([]int, n)
		s := make([]int, n)
		for i := range r {
			r[i] = rng.IntN(3)
			s[i] = rng.IntN(3)
		}
		// Dense graph: candidates are the arrivals at t=0 (cache starts
		// empty, so only two candidates) — pad the cache with dead tuples.
		cands := []Candidate{
			{Value: r[0], Stream: StreamR},
			{Value: s[0], Stream: StreamS},
		}
		for len(cands) < k+2 {
			cands = append(cands, Candidate{Value: -1 - len(cands), Stream: StreamR})
		}
		procs := [2]process.Process{
			&process.Deterministic{Seq: r},
			&process.Deterministic{Seq: s},
		}
		hists := [2]*process.History{process.NewHistory(r[0]), process.NewHistory(s[0])}
		dec, err := FlowExpectStep(cands, procs, hists, k, n-1)
		if err != nil {
			t.Fatal(err)
		}
		// The offline optimum counts the same benefits (joins at t >= 1)
		// because nothing joins at t = 0 unless r[0] == s[0], which both
		// formulations ignore.
		want := OptOfflineJoin(r, s, k, 0)
		if !almostEqual(dec.ExpectedBenefit, float64(want.Total), 1e-9) {
			t.Fatalf("trial %d: r=%v s=%v k=%d: dense %v != compressed %d",
				trial, r, s, k, dec.ExpectedBenefit, want.Total)
		}
	}
}

func TestOptOfflineWindowReducesCount(t *testing.T) {
	// Value 5 arrives in R at t=0 and in S at t=0 (ignored), 4 and 8.
	r := []int{5, 1, 2, 3, 4, 6, 7, 8, 9}
	s := []int{0, 0, 0, 0, 5, 0, 0, 5, 0}
	unbounded := OptOfflineJoin(r, s, 1, 0)
	if unbounded.Total != 2 {
		t.Fatalf("unbounded Total = %d, want 2", unbounded.Total)
	}
	windowed := OptOfflineJoin(r, s, 1, 4)
	if windowed.Total != 1 {
		t.Fatalf("windowed Total = %d, want 1 (t=8 join is outside the window)", windowed.Total)
	}
}

func TestOptOfflineDuplicateValuesBothJoin(t *testing.T) {
	// Two R tuples with the same value both join the same future S tuple
	// (the paper: tuples are distinct even with equal values).
	r := []int{5, 5, 0, 0}
	s := []int{1, 2, 5, 5}
	res := OptOfflineJoin(r, s, 2, 0)
	// Cache both R(5)s: each joins S(5) at t=2 and t=3 → 4 results.
	if res.Total != 4 {
		t.Fatalf("Total = %d, want 4", res.Total)
	}
}
