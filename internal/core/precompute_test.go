package core

import (
	"testing"

	"stochstream/internal/process"
)

func TestH1MatchesExactAtIntegers(t *testing.T) {
	w := &process.GaussianWalk{Drift: 0, Sigma: 1}
	l := NewLExp(10)
	h1, err := PrecomputeH1(w, l, -20, 20, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for d := -20; d <= 20; d++ {
		exact := MarginalH(w, 0, d, l, 0)
		if got := h1.At(0, d); !almostEqual(got, exact, 1e-9) {
			t.Fatalf("h1(%d) = %v, want %v", d, got, exact)
		}
		// Translation invariance (Theorem 5(2)): same difference, any last.
		if got := h1.At(100, 100+d); !almostEqual(got, exact, 1e-9) {
			t.Fatalf("h1 translation broken at d=%d", d)
		}
	}
}

func TestH1ZeroDriftSymmetricAndUnimodal(t *testing.T) {
	// Section 5.5: zero drift with symmetric unimodal steps ranks candidates
	// by distance from the current position.
	w := &process.GaussianWalk{Drift: 0, Sigma: 1}
	h1, err := PrecomputeH1(w, NewLExp(10), -20, 20, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= 20; d++ {
		if !almostEqual(h1.At(0, d), h1.At(0, -d), 1e-9) {
			t.Fatalf("asymmetric at ±%d", d)
		}
		if h1.At(0, d) >= h1.At(0, d-1) {
			t.Fatalf("not decreasing in |d| at %d: %v >= %v", d, h1.At(0, d), h1.At(0, d-1))
		}
	}
}

func TestH1DriftShiftsPreferenceRight(t *testing.T) {
	// Figure 6: positive drift makes tuples to the right of the current
	// value more desirable.
	l := NewLExp(10)
	h0, err := PrecomputeH1(&process.GaussianWalk{Drift: 0, Sigma: 1}, l, -20, 20, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := PrecomputeH1(&process.GaussianWalk{Drift: 2, Sigma: 1}, l, -20, 20, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	h4, err := PrecomputeH1(&process.GaussianWalk{Drift: 4, Sigma: 1}, l, -20, 20, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	argmax := func(h *H1) int {
		ds, hs := h.Curve()
		best := 0
		for i := range ds {
			if hs[i] > hs[best] {
				best = i
			}
		}
		return ds[best]
	}
	m0, m2, m4 := argmax(h0), argmax(h2), argmax(h4)
	if m0 != 0 {
		t.Fatalf("zero-drift peak at %d, want 0", m0)
	}
	if !(m2 > m0) || !(m4 > m2) {
		t.Fatalf("peaks not ordered with drift: %d, %d, %d", m0, m2, m4)
	}
	// With drift, right-side tuples beat mirror-image left-side tuples.
	if h2.At(0, 4) <= h2.At(0, -4) {
		t.Fatal("drift 2 should prefer +4 over -4")
	}
}

func TestH1ClampsOutsideRange(t *testing.T) {
	w := &process.GaussianWalk{Drift: 0, Sigma: 1}
	h1, err := PrecomputeH1(w, NewLExp(5), -10, 10, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := h1.At(0, 50); !almostEqual(got, h1.At(0, 10), 1e-12) {
		t.Fatalf("clamp right: %v vs %v", got, h1.At(0, 10))
	}
	if got := h1.At(0, -50); !almostEqual(got, h1.At(0, -10), 1e-12) {
		t.Fatalf("clamp left: %v vs %v", got, h1.At(0, -10))
	}
}

func TestH1Errors(t *testing.T) {
	w := &process.GaussianWalk{Sigma: 1}
	if _, err := PrecomputeH1(w, NewLExp(5), 10, -10, 1, 0); err == nil {
		t.Fatal("inverted range should error")
	}
	// Coarse step still covers the endpoint.
	h1, err := PrecomputeH1(w, NewLExp(5), -10, 10, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := h1.At(0, 10), MarginalH(w, 0, 10, NewLExp(5), 0); !almostEqual(got, want, 1e-9) {
		t.Fatalf("endpoint not exact under coarse step: %v vs %v", got, want)
	}
}

// The REAL model: h2 surface approximation from a 5x5 control grid should
// track exact recomputation closely (Figure 15 vs 16).
func TestH2ApproximatesREALModel(t *testing.T) {
	// Paper's fitted model scaled by 10 (0.1 °C granularity):
	// X_t = 0.72·X_{t-1} + 55.9 + Y_t, σ = 42.2.
	ar := &process.AR1{Phi0: 55.9, Phi1: 0.72, Sigma: 42.2, Init: 200}
	l := NewLExp(50)
	h2, err := PrecomputeH2(ar, l, 50, 350, 50, 350, 5, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	maxErr, meanErr := h2.Accuracy(ar, l, 0, 21, 21)
	// The exact surface peaks around 8e-3; the approximation should be
	// within a small fraction of that.
	peak := MarginalH(ar, 200, 200, l, 0)
	if peak <= 0 {
		t.Fatal("degenerate peak")
	}
	if maxErr > 0.25*peak {
		t.Fatalf("maxErr = %v (peak %v)", maxErr, peak)
	}
	if meanErr > 0.05*peak {
		t.Fatalf("meanErr = %v (peak %v)", meanErr, peak)
	}
	// Denser control grids should not be (meaningfully) worse.
	h2d, err := PrecomputeH2(ar, l, 50, 350, 50, 350, 9, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	maxErrD, _ := h2d.Accuracy(ar, l, 0, 21, 21)
	if maxErrD > maxErr*1.05 {
		t.Fatalf("9x9 grid (%v) worse than 5x5 (%v)", maxErrD, maxErr)
	}
}

func TestH2AtMatchesExactAtControlPoints(t *testing.T) {
	ar := &process.AR1{Phi0: 5, Phi1: 0.6, Sigma: 3, Init: 12}
	l := NewLExp(20)
	h2, err := PrecomputeH2(ar, l, 0, 40, 0, 40, 5, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Control coordinates are 0, 10, 20, 30, 40 on both axes.
	for _, v := range []int{0, 10, 20, 30, 40} {
		for _, x := range []int{0, 10, 20, 30, 40} {
			exact := MarginalH(ar, x, v, l, 0)
			if got := h2.At(x, v); !almostEqual(got, exact, 1e-9) {
				t.Fatalf("h2(%d,%d) = %v, want %v", x, v, got, exact)
			}
		}
	}
}

func TestH2Errors(t *testing.T) {
	ar := &process.AR1{Phi0: 5, Phi1: 0.6, Sigma: 3}
	l := NewLExp(20)
	if _, err := PrecomputeH2(ar, l, 40, 0, 0, 40, 5, 5, 0); err == nil {
		t.Fatal("inverted v range should error")
	}
	if _, err := PrecomputeH2(ar, l, 0, 40, 0, 40, 1, 5, 0); err == nil {
		t.Fatal("1-point grid should error")
	}
}

func TestH2ClampsOutsideDomain(t *testing.T) {
	ar := &process.AR1{Phi0: 5, Phi1: 0.6, Sigma: 3}
	l := NewLExp(20)
	h2, err := PrecomputeH2(ar, l, 0, 40, 0, 40, 5, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := h2.At(-100, 20), h2.At(0, 20); !almostEqual(got, want, 1e-12) {
		t.Fatalf("x clamp: %v vs %v", got, want)
	}
	if got, want := h2.At(20, 999), h2.At(20, 40); !almostEqual(got, want, 1e-12) {
		t.Fatalf("v clamp: %v vs %v", got, want)
	}
}

func TestNormalMassDegenerateSD(t *testing.T) {
	if got := normalMass(3, 3.2, 0); got != 1 {
		t.Fatalf("point-mass rounding: %v", got)
	}
	if got := normalMass(4, 3.2, 0); got != 0 {
		t.Fatalf("point-mass miss: %v", got)
	}
}

func TestIntLinspaceDedupes(t *testing.T) {
	got := intLinspace(0, 2, 5) // would be 0, 0.5, 1, 1.5, 2 → rounds with dupes
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not strictly increasing: %v", got)
		}
	}
	if got[0] != 0 || got[len(got)-1] != 2 {
		t.Fatalf("endpoints wrong: %v", got)
	}
	if v := intLinspace(0, 100, 5); len(v) != 5 || v[1] != 25 {
		t.Fatalf("wide range: %v", v)
	}
}

func TestH2SectionMatchesAt(t *testing.T) {
	ar := &process.AR1{Phi0: 5, Phi1: 0.6, Sigma: 3, Init: 12}
	l := NewLExp(20)
	h2, err := PrecomputeH2(ar, l, 0, 40, 0, 40, 5, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, last := range []int{0, 10, 17, 40, 99} {
		sec := h2.Section(last)
		for v := -5; v <= 45; v += 3 {
			got := sec(v)
			want := h2.At(last, v)
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			// Row-major vs column-major tensor interpolation agree exactly
			// on the knot lattice and closely off it.
			if diff > 2e-4 {
				t.Fatalf("last=%d v=%d: section %v vs At %v", last, v, got, want)
			}
		}
	}
}

func TestH1RoundTripsThroughBinary(t *testing.T) {
	w := &process.GaussianWalk{Drift: 1, Sigma: 1.5}
	l := NewLExp(8)
	orig, err := PrecomputeH1(w, l, -25, 25, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got H1
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for d := -30; d <= 30; d++ {
		if a, b := orig.At(0, d), got.At(0, d); !almostEqual(a, b, 1e-12) {
			t.Fatalf("d=%d: %v vs %v after round trip", d, a, b)
		}
	}
	if err := got.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage should fail to decode")
	}
}

func TestH2RoundTripsThroughBinary(t *testing.T) {
	ar := &process.AR1{Phi0: 5, Phi1: 0.6, Sigma: 3, Init: 12}
	l := NewLExp(20)
	orig, err := PrecomputeH2(ar, l, 0, 40, 0, 40, 5, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got H2
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for x := -5; x <= 45; x += 7 {
		for v := -5; v <= 45; v += 7 {
			if a, b := orig.At(x, v), got.At(x, v); !almostEqual(a, b, 1e-12) {
				t.Fatalf("(%d,%d): %v vs %v after round trip", x, v, a, b)
			}
		}
	}
	// Sections work on the reloaded surface too.
	sec := got.Section(12)
	if !almostEqual(sec(20), orig.Section(12)(20), 1e-12) {
		t.Fatal("section mismatch after round trip")
	}
	if err := got.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty payload should fail to decode")
	}
}
