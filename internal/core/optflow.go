package core

import (
	"sort"

	"stochstream/internal/mincostflow"
)

// OptOfflineResult reports the MAX-subset offline optimum for a joining
// instance with fully known streams.
type OptOfflineResult struct {
	// Total is the maximum number of result tuples obtainable from the
	// cache over the whole run.
	Total int
	// JoinTimes lists, with multiplicity and in non-decreasing order, the
	// time step at which each achieved result tuple is produced. Experiment
	// harnesses count the entries after a warm-up period.
	JoinTimes []int
	// Schedule lists the cache-residency interval of every tuple the
	// optimal solution holds: the tuple from Stream arriving at Arrived
	// stays cached through time Until (inclusive), collecting its match at
	// Until, and is released immediately after. Replaying the schedule
	// through the simulator achieves exactly Total results (the
	// Clairvoyant policy in internal/policy does this).
	Schedule []HoldInterval
}

// HoldInterval is one tuple's cache residency in the offline optimum.
type HoldInterval struct {
	Stream  StreamID
	Arrived int
	Until   int
}

// CountAfter returns how many achieved results occur strictly after time t.
func (r OptOfflineResult) CountAfter(t int) int {
	i := sort.SearchInts(r.JoinTimes, t+1)
	return len(r.JoinTimes) - i
}

// OptOfflineJoin computes the offline optimum (OPT-offline of Das et al.,
// the paper's upper-bound comparator) for joining streams r and s — r[t] and
// s[t] are the join-attribute values arriving at time t — with a cache of k
// tuples and, if window > 0, sliding-window semantics in which a tuple can
// join only partners arriving within window steps of its own arrival.
//
// Rather than materializing the dense slice graph of Section 3.1 over the
// full stream length (which is quadratic in it), this uses an equivalent
// compressed formulation: each cache slot is a unit of flow moving through
// "free at time t" nodes F_t, and each tuple x arriving at time a with
// future match times j1 < j2 < … contributes a chain
// F_a → X_{j1} → X_{j2} → … whose arcs each carry a benefit of one result
// tuple, with release arcs X_{ji} → F_{ji} returning the slot at the moment
// a replacement candidate arrives. Holding a tuple between its match times
// is exactly as good as releasing at the previous match and idling the slot,
// so the compression is lossless; tests cross-validate it against the dense
// FlowExpect graph on deterministic inputs.
func OptOfflineJoin(r, s []int, k int, window int) OptOfflineResult {
	n := len(r)
	if len(s) != n {
		panic("core: OptOfflineJoin requires equally long streams")
	}
	if k < 1 || n == 0 {
		return OptOfflineResult{}
	}
	// occurrences[v] for each stream: times at which value v arrives.
	occ := [2]map[int][]int{make(map[int][]int), make(map[int][]int)}
	for t := 0; t < n; t++ {
		occ[0][r[t]] = append(occ[0][r[t]], t)
		occ[1][s[t]] = append(occ[1][s[t]], t)
	}
	matchTimes := func(stream StreamID, v, arrived int) []int {
		all := occ[stream.Partner()][v]
		i := sort.SearchInts(all, arrived+1)
		out := all[i:]
		if window > 0 {
			j := sort.SearchInts(out, arrived+window+1)
			out = out[:j]
		}
		return out
	}
	return optOfflineWithMatches(r, s, k, matchTimes)
}

// optOfflineWithMatches is the shared compressed-flow construction behind
// OptOfflineJoin and OptOfflineBandJoin: matchTimes enumerates, for a tuple
// of the given stream/value/arrival, the future partner arrival times it can
// join.
func optOfflineWithMatches(r, s []int, k int, matchTimes func(stream StreamID, v, arrived int) []int) OptOfflineResult {
	n := len(r)
	// Node layout: 0..n = F_0..F_n, then chain nodes appended per tuple.
	type chain struct {
		joinTimes []int // match times, parallel to chain arcs
		arcs      []int // arc ids carrying one unit of benefit each
	}
	nodeCount := n + 1
	type tupleRef struct {
		stream  StreamID
		arrived int
		matches []int
	}
	var tuples []tupleRef
	for t := 0; t < n; t++ {
		for _, st := range []StreamID{StreamR, StreamS} {
			v := r[t]
			if st == StreamS {
				v = s[t]
			}
			m := matchTimes(st, v, t)
			if len(m) == 0 {
				continue
			}
			tuples = append(tuples, tupleRef{stream: st, arrived: t, matches: m})
			nodeCount += len(m)
		}
	}
	// +2 for source and sink.
	g := mincostflow.New(nodeCount + 2)
	source, sink := nodeCount, nodeCount+1
	g.AddArc(source, 0, k, 0) // k free slots at time 0
	for t := 0; t < n; t++ {
		g.AddArc(t, t+1, k, 0) // idle slots carry forward
	}
	g.AddArc(n, sink, k, 0)

	next := n + 1
	chains := make([]chain, len(tuples))
	for i, tu := range tuples {
		c := chain{joinTimes: tu.matches}
		prev := tu.arrived // F_a
		for _, jt := range tu.matches {
			node := next
			next++
			c.arcs = append(c.arcs, g.AddArc(prev, node, 1, -1))
			g.AddArc(node, jt, 1, 0) // release the slot at the match time
			prev = node
		}
		chains[i] = c
	}

	if _, err := g.MinCostFlow(source, sink, k); err != nil {
		return OptOfflineResult{}
	}
	var out OptOfflineResult
	for i, c := range chains {
		until := -1
		for j, arc := range c.arcs {
			if g.Flow(arc) > 0 {
				out.Total++
				out.JoinTimes = append(out.JoinTimes, c.joinTimes[j])
				until = c.joinTimes[j]
			}
		}
		if until >= 0 {
			out.Schedule = append(out.Schedule, HoldInterval{
				Stream:  tuples[i].stream,
				Arrived: tuples[i].arrived,
				Until:   until,
			})
		}
	}
	sort.Ints(out.JoinTimes)
	return out
}
