package core_test

import (
	"fmt"

	"stochstream/internal/core"
	"stochstream/internal/dist"
	"stochstream/internal/process"
)

// Computing an ECB for a stationary partner: B(Δt) = p(v)·Δt (Section 5.2).
func ExampleJoinECB() {
	partner := &process.Stationary{P: dist.NewTable(0, []float64{1, 3})} // p(1) = 0.75
	h := process.NewHistory(0)
	b := core.JoinECB(partner, h, 1, 4)
	fmt.Printf("B(1)=%.2f B(4)=%.2f\n", b.At(1), b.At(4))
	// Output:
	// B(1)=0.75 B(4)=3.00
}

// Dominance certifies optimal discards: under a stationary partner the
// less-frequent value is always the right one to evict (Theorem 3).
func ExampleDominates() {
	partner := &process.Stationary{P: dist.NewTable(0, []float64{1, 3})}
	h := process.NewHistory(0)
	hot := core.JoinECB(partner, h, 1, 8)
	cold := core.JoinECB(partner, h, 0, 8)
	fmt.Println(core.Dominates(hot, cold), core.StronglyDominates(hot, cold))
	// Output:
	// true true
}

// HEEB with Lfixed(ΔT) reduces to the ECB at ΔT (the Section 4.3 table).
func ExampleJoinH() {
	partner := &process.Stationary{P: dist.NewUniform(0, 9)}
	h := process.NewHistory(0)
	hFixed := core.JoinH(partner, h, 5, core.LFixed{DT: 3}, 10)
	b := core.JoinECB(partner, h, 5, 10)
	fmt.Printf("Hfixed=%.2f equals B(3)=%.2f\n", hFixed, b.At(3))
	// Output:
	// Hfixed=0.30 equals B(3)=0.30
}

// The offline optimum for fully known streams (OPT-offline of Das et al.).
func ExampleOptOfflineJoin() {
	r := []int{1, 9, 9, 9}
	s := []int{8, 1, 8, 1}
	res := core.OptOfflineJoin(r, s, 1, 0)
	fmt.Println(res.Total, res.JoinTimes)
	// Output:
	// 2 [1 3]
}

// Precomputing h1 for a zero-drift random walk: the score peaks at the
// current value and decays symmetrically (Section 5.5).
func ExamplePrecomputeH1() {
	walk := &process.GaussianWalk{Sigma: 1}
	h1, err := core.PrecomputeH1(walk, core.NewLExp(10), -20, 20, 1, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(h1.At(100, 100) > h1.At(100, 105))
	fmt.Printf("symmetric: %v\n", h1.At(100, 97) == h1.At(100, 103))
	// Output:
	// true
	// symmetric: true
}
