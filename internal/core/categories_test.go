package core

import (
	"testing"

	"stochstream/internal/dist"
	"stochstream/internal/process"
)

// Section 5.3 / Appendix O: closed-form joining ECBs under linear trends
// with bounded uniform noise (f(t) = t, noise intervals [−wR, wR] and
// [−wS, wS] with wR < wS). The five candidate categories have explicit
// formulas; these tests verify JoinECB reproduces each one.

const (
	wR = 10
	wS = 15
)

// floorStreams builds the Section 5.3 setup at current time t0.
func floorStreams(t0 int) (r, s process.Process, hR, hS *process.History) {
	r = &process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.NewUniform(-wR, wR)}
	s = &process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.NewUniform(-wS, wS)}
	return r, s, process.NewHistory(make([]int, t0+1)...), process.NewHistory(make([]int, t0+1)...)
}

func TestCategoryR1ZeroECB(t *testing.T) {
	// x from R with vx ≤ t0 − wS: already missed S's window.
	t0 := 100
	_, s, _, hS := floorStreams(t0)
	b := JoinECB(s, hS, t0-wS, 40)
	for dt := 1; dt <= 40; dt++ {
		if b.At(dt) != 0 {
			t.Fatalf("R1 ECB not zero at dt=%d: %v", dt, b.At(dt))
		}
	}
}

func TestCategoryR2Formula(t *testing.T) {
	// x from R with vx ∈ (t0−wS, t0+wR]: benefit rate 1/(2wS+1) until the S
	// window moves past, i.e. B(Δt) = min(Δt, vx−(t0−wS)) / (2wS+1).
	t0 := 100
	_, s, _, hS := floorStreams(t0)
	for _, vx := range []int{t0 - wS + 1, t0 - 5, t0, t0 + wR} {
		b := JoinECB(s, hS, vx, 60)
		limit := vx - (t0 - wS)
		for dt := 1; dt <= 60; dt++ {
			steps := dt
			if steps > limit {
				steps = limit
			}
			want := float64(steps) / float64(2*wS+1)
			if !almostEqual(b.At(dt), want, 1e-9) {
				t.Fatalf("R2 vx=%d dt=%d: %v, want %v", vx, dt, b.At(dt), want)
			}
		}
	}
}

func TestCategoryS1ZeroECB(t *testing.T) {
	// x from S with vx ≤ t0 − wR: misses R's window.
	t0 := 100
	r, _, hR, _ := floorStreams(t0)
	b := JoinECB(r, hR, t0-wR, 40)
	for dt := 1; dt <= 40; dt++ {
		if b.At(dt) != 0 {
			t.Fatalf("S1 ECB not zero at dt=%d", dt)
		}
	}
}

func TestCategoryS2Formula(t *testing.T) {
	// x from S with vx ∈ (t0−wR, t0+wR+1]: benefit rate 1/(2wR+1) from the
	// next step until R's window passes: B(Δt) = min(Δt, vx−(t0−wR))/(2wR+1).
	t0 := 100
	r, _, hR, _ := floorStreams(t0)
	for _, vx := range []int{t0 - wR + 1, t0, t0 + wR, t0 + wR + 1} {
		b := JoinECB(r, hR, vx, 60)
		limit := vx - (t0 - wR)
		for dt := 1; dt <= 60; dt++ {
			steps := dt
			if steps > limit {
				steps = limit
			}
			want := float64(steps) / float64(2*wR+1)
			if !almostEqual(b.At(dt), want, 1e-9) {
				t.Fatalf("S2 vx=%d dt=%d: %v, want %v", vx, dt, b.At(dt), want)
			}
		}
	}
}

func TestCategoryS3Formula(t *testing.T) {
	// x from S with vx ∈ (t0+wR+1, t0+wS]: zero until R's window reaches it
	// at Δt = vx−(t0+wR), then rate 1/(2wR+1) for 2wR+1 steps, then flat at 1.
	t0 := 100
	r, _, hR, _ := floorStreams(t0)
	for _, vx := range []int{t0 + wR + 2, t0 + wS} {
		b := JoinECB(r, hR, vx, 80)
		start := vx - (t0 + wR) // first Δt with nonzero increment
		for dt := 1; dt <= 80; dt++ {
			var want float64
			switch {
			case dt < start:
				want = 0
			case dt >= start+2*wR+1:
				want = 1
			default:
				want = float64(dt-start+1) / float64(2*wR+1)
			}
			if !almostEqual(b.At(dt), want, 1e-9) {
				t.Fatalf("S3 vx=%d dt=%d: %v, want %v", vx, dt, b.At(dt), want)
			}
		}
	}
}

// Within each category, smaller values are dominated — the per-category
// optimal-discard rule of Section 5.3.
func TestWithinCategoryDominanceOrder(t *testing.T) {
	t0 := 100
	r, s, hR, hS := floorStreams(t0)
	// R2 tuples ordered by value.
	for v := t0 - wS + 2; v <= t0+wR; v++ {
		hi := JoinECB(s, hS, v, 60)
		lo := JoinECB(s, hS, v-1, 60)
		if !Dominates(hi, lo) {
			t.Fatalf("R2: value %d should dominate %d", v, v-1)
		}
	}
	// S2 tuples likewise.
	for v := t0 - wR + 2; v <= t0+wR+1; v++ {
		hi := JoinECB(r, hR, v, 60)
		lo := JoinECB(r, hR, v-1, 60)
		if !Dominates(hi, lo) {
			t.Fatalf("S2: value %d should dominate %d", v, v-1)
		}
	}
}

// Across categories R2 and S2, the paper's condition: x (R2) dominates y
// (S2) iff (vx−(t0−wS))/(2wS+1) ≥ (vy−(t0−wR))/(2wR+1) ... and they are
// incomparable when the rates and plateaus cross. Verify dominance matches
// the plateau comparison combined with the rate comparison.
func TestCrossCategoryComparisons(t *testing.T) {
	t0 := 100
	r, s, hR, hS := floorStreams(t0)
	// An R2 tuple with a long remaining life but a slow rate...
	x := JoinECB(s, hS, t0+wR, 80) // rate 1/31, plateau (wR+wS)/31 ≈ 0.806
	// ...versus an S2 tuple with a fast rate but shorter life.
	y := JoinECB(r, hR, t0+2, 80) // rate 1/21, plateau (wR+2)/21 ≈ 0.571
	// y rises faster early; x plateaus higher: incomparable.
	if Comparable(x, y) {
		t.Fatalf("expected incomparable R2/S2 pair: x(1)=%v y(1)=%v xInf=%v yInf=%v",
			x.At(1), y.At(1), x.At(80), y.At(80))
	}
	// S2's per-step rate 1/(2wR+1) always exceeds R2's 1/(2wS+1), so a
	// maximally long-lived S2 tuple dominates every R2 tuple: it rises
	// faster at every Δt and reaches plateau 1.
	yStrong := JoinECB(r, hR, t0+wR+1, 80)
	if !Dominates(yStrong, x) {
		t.Fatal("longest-lived S2 tuple should dominate any R2 tuple")
	}
	// The converse can never hold while the S2 tuple is alive at Δt = 1.
	if Dominates(x, yStrong) {
		t.Fatal("R2 cannot dominate a live S2 (slower rate at Δt=1)")
	}
}
