package core

import (
	"sort"
	"testing"

	"stochstream/internal/mincostflow"
	"stochstream/internal/stats"
)

// optOfflineCostScaling rebuilds the compressed OPT-offline graph on the
// integer cost-scaling solver (the algorithm the paper actually cites) and
// returns the optimum; OptOfflineJoin's SSP-based result must match.
func optOfflineCostScaling(r, s []int, k int) int64 {
	n := len(r)
	occ := [2]map[int][]int{make(map[int][]int), make(map[int][]int)}
	for t := 0; t < n; t++ {
		occ[0][r[t]] = append(occ[0][r[t]], t)
		occ[1][s[t]] = append(occ[1][s[t]], t)
	}
	matchTimes := func(stream StreamID, v, arrived int) []int {
		all := occ[stream.Partner()][v]
		i := sort.SearchInts(all, arrived+1)
		return all[i:]
	}
	type tupleRef struct {
		arrived int
		matches []int
	}
	var tuples []tupleRef
	nodeCount := n + 1
	for t := 0; t < n; t++ {
		for _, st := range []StreamID{StreamR, StreamS} {
			v := r[t]
			if st == StreamS {
				v = s[t]
			}
			m := matchTimes(st, v, t)
			if len(m) == 0 {
				continue
			}
			tuples = append(tuples, tupleRef{arrived: t, matches: m})
			nodeCount += len(m)
		}
	}
	g := mincostflow.NewInt(nodeCount + 2)
	source, sink := nodeCount, nodeCount+1
	g.AddArc(source, 0, int64(k), 0)
	for t := 0; t < n; t++ {
		g.AddArc(t, t+1, int64(k), 0)
	}
	g.AddArc(n, sink, int64(k), 0)
	next := n + 1
	for _, tu := range tuples {
		prev := tu.arrived
		for _, jt := range tu.matches {
			node := next
			next++
			g.AddArc(prev, node, 1, -1)
			g.AddArc(node, jt, 1, 0)
			prev = node
		}
	}
	res, err := g.MinCostFlow(source, sink, int64(k))
	if err != nil {
		return 0
	}
	return -res.Cost
}

func TestOptOfflineSolversAgree(t *testing.T) {
	rng := stats.NewRNG(404)
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.IntN(60)
		k := 1 + rng.IntN(4)
		vals := 2 + rng.IntN(5)
		r := make([]int, n)
		s := make([]int, n)
		for i := range r {
			r[i] = rng.IntN(vals)
			s[i] = rng.IntN(vals)
		}
		ssp := OptOfflineJoin(r, s, k, 0).Total
		cs := optOfflineCostScaling(r, s, k)
		if int64(ssp) != cs {
			t.Fatalf("trial %d (n=%d k=%d): SSP %d != cost scaling %d", trial, n, k, ssp, cs)
		}
	}
}
