package core

import (
	"stochstream/internal/dist"
	"stochstream/internal/process"
)

// ForecastCache memoizes the conditional forecasts Pr{X^s_{t0+Δt} = · | x̄_{t0}}
// of both streams for one replacement decision. Every HEEB score and every
// FlowExpect graph arc at a decision conditions on the same histories, so the
// Δt-step partner forecast is identical for every candidate — yet the seed
// implementation re-derived it per candidate per horizon step, making the
// number of Forecast calls O(candidates × horizon) instead of O(horizon).
// Policies hold one cache, Rebind it at the start of each decision, and share
// it across all candidates of that decision.
//
// A ForecastCache is not safe for concurrent mutation. Parallel scorers must
// Warm the needed horizon first; once a Δt is materialized, At is a read-only
// slice access and may be called from multiple goroutines.
type ForecastCache struct {
	procs [2]process.Process
	hists [2]*process.History
	fc    [2][]dist.PMF
}

// NewForecastCache returns a cache over the given models and histories. Nil
// processes are allowed as long as At is never called for their stream.
func NewForecastCache(procs [2]process.Process, hists [2]*process.History) *ForecastCache {
	return &ForecastCache{procs: procs, hists: hists}
}

// Rebind invalidates every memoized forecast and points the cache at the
// given histories, keeping the slice capacity. Call it at the start of each
// decision: the histories advance between decisions, so forecasts memoized at
// an earlier t0 are stale even when the pointers are unchanged.
func (c *ForecastCache) Rebind(procs [2]process.Process, hists [2]*process.History) {
	c.procs = procs
	c.hists = hists
	c.fc[0] = c.fc[0][:0]
	c.fc[1] = c.fc[1][:0]
}

// At returns the Δt-step forecast of stream s, memoizing it (and any missing
// shorter horizon) on first use. dt must be >= 1.
func (c *ForecastCache) At(s StreamID, dt int) dist.PMF {
	f := c.fc[s]
	if len(f) < dt {
		// Write the header back only when the cache actually grew: a warmed
		// read must be a pure load so concurrent readers don't race on the
		// slice header store.
		for len(f) < dt {
			f = append(f, c.procs[s].Forecast(c.hists[s], len(f)+1))
		}
		c.fc[s] = f
	}
	return f[dt-1]
}

// Warm materializes forecasts 1..horizon of stream s so that subsequent At
// calls up to that horizon mutate nothing — the prewarm step parallel scoring
// relies on before fanning out read-only workers.
func (c *ForecastCache) Warm(s StreamID, horizon int) {
	if horizon >= 1 {
		c.At(s, horizon)
	}
}

// Len returns how many horizon steps of stream s are currently materialized.
func (c *ForecastCache) Len(s StreamID) int { return len(c.fc[s]) }
