package core

import (
	"math"
	"testing"
	"testing/quick"

	"stochstream/internal/dist"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func TestLFixed(t *testing.T) {
	l := LFixed{DT: 3}
	for dt, want := range map[int]float64{1: 1, 3: 1, 4: 0, 10: 0} {
		if got := l.At(dt); got != want {
			t.Fatalf("LFixed.At(%d) = %v, want %v", dt, got, want)
		}
	}
	if got := l.Horizon(1e-9); got != 3 {
		t.Fatalf("Horizon = %d", got)
	}
	if err := CheckLProperties(l, 20, true); err != nil {
		t.Fatal(err)
	}
}

func TestLInf(t *testing.T) {
	l := LInf{}
	if l.At(1) != 1 || l.At(1000) != 1 {
		t.Fatal("LInf should be constant 1")
	}
	if l.Horizon(1e-9) != 0 {
		t.Fatal("LInf horizon should be unbounded (0)")
	}
	if err := CheckLProperties(l, 20, true); err != nil {
		t.Fatal(err)
	}
}

func TestLInv(t *testing.T) {
	l := LInv{}
	if got := l.At(4); got != 0.25 {
		t.Fatalf("LInv.At(4) = %v", got)
	}
	if got := l.Horizon(0.01); got != 100 {
		t.Fatalf("Horizon(0.01) = %d, want 100", got)
	}
	if got := l.Horizon(0); got != 0 {
		t.Fatalf("Horizon(0) = %d, want 0 (unbounded)", got)
	}
	if err := CheckLProperties(l, 50, true); err != nil {
		t.Fatal(err)
	}
}

func TestLExp(t *testing.T) {
	l := NewLExp(10)
	if got := l.At(10); !almostEqual(got, math.Exp(-1), 1e-12) {
		t.Fatalf("LExp.At(alpha) = %v, want 1/e", got)
	}
	h := l.Horizon(1e-9)
	if l.At(h) > 1e-9 {
		t.Fatalf("At(Horizon) = %v, want <= 1e-9", l.At(h))
	}
	if l.At(h-5) < 1e-9 {
		t.Fatal("horizon should be tight-ish")
	}
	if err := CheckLProperties(l, 100, true); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewLExp(0) did not panic")
		}
	}()
	NewLExp(0)
}

func TestLWindow(t *testing.T) {
	l := LWindow{Inner: LInf{}, Remaining: 3}
	for dt, want := range map[int]float64{1: 1, 3: 1, 4: 0} {
		if got := l.At(dt); got != want {
			t.Fatalf("LWindow.At(%d) = %v, want %v", dt, got, want)
		}
	}
	if got := l.Horizon(1e-9); got != 3 {
		t.Fatalf("Horizon = %d, want 3", got)
	}
	expired := LWindow{Inner: NewLExp(5), Remaining: 0}
	if expired.At(1) != 0 || expired.Horizon(1e-9) != 1 {
		t.Fatal("expired window L should be zero")
	}
	clippedByInner := LWindow{Inner: NewLExp(2), Remaining: 1000}
	if got := clippedByInner.Horizon(1e-9); got >= 1000 {
		t.Fatalf("inner decay should bound the horizon, got %d", got)
	}
	if err := CheckLProperties(l, 10, true); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLPropertiesCatchesViolations(t *testing.T) {
	if err := CheckLProperties(badL{}, 5, true); err == nil {
		t.Fatal("increasing L should fail the check")
	}
	if err := CheckLProperties(LWindow{Inner: LInf{}, Remaining: 0}, 5, true); err == nil {
		t.Fatal("zero L should fail Property 5")
	}
}

type badL struct{}

func (badL) At(dt int) float64   { return float64(dt) / 10 }
func (badL) Horizon(float64) int { return 5 }

func TestHorizonFor(t *testing.T) {
	if got := HorizonFor(LInf{}, 500); got != 500 {
		t.Fatalf("unbounded L fallback: %d", got)
	}
	if got := HorizonFor(LFixed{DT: 7}, 500); got != 7 {
		t.Fatalf("fixed horizon: %d", got)
	}
	if got := HorizonFor(LInf{}, 0); got != 1 {
		t.Fatalf("clamped low: %d", got)
	}
	if got := HorizonFor(LInf{}, MaxHorizon+10); got != MaxHorizon {
		t.Fatalf("clamped high: %d", got)
	}
}

// H computed from the tabulated ECB and H computed by the equivalent direct
// sums of Section 4.3 must agree.
func TestHFromECBMatchesJoinH(t *testing.T) {
	partner := &process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(2, 10)}
	h := process.NewHistory(make([]int, 21)...) // t0 = 20
	l := NewLExp(8)
	horizon := HorizonFor(l, 0)
	for _, v := range []int{15, 20, 25, 31, 40} {
		b := JoinECB(partner, h, v, horizon)
		direct := JoinH(partner, h, v, l, horizon)
		viaECB := HFromECB(b, l)
		if !almostEqual(direct, viaECB, 1e-9) {
			t.Fatalf("v=%d: JoinH %v != HFromECB %v", v, direct, viaECB)
		}
	}
}

// Hfixed = B_x(ΔT) exactly (the table in Section 4.3).
func TestLFixedGivesECBValue(t *testing.T) {
	partner := &process.Stationary{P: dist.NewUniform(0, 4)}
	h := process.NewHistory(0)
	b := JoinECB(partner, h, 2, 10)
	for _, dT := range []int{1, 3, 7} {
		got := JoinH(partner, h, 2, LFixed{DT: dT}, 10)
		if !almostEqual(got, b.At(dT), 1e-12) {
			t.Fatalf("Hfixed(ΔT=%d) = %v, want B(%d) = %v", dT, got, dT, b.At(dT))
		}
	}
}

// Hinf for caching = probability of ever being referenced (lim of the ECB).
func TestLInfCachingIsEventualReferenceProbability(t *testing.T) {
	ref := &process.Stationary{P: dist.NewTable(0, []float64{3, 1})} // p(1) = 0.25
	h := process.NewHistory(0)
	got := CacheH(ref, h, 1, LInf{}, 5000)
	if !almostEqual(got, 1, 1e-6) {
		t.Fatalf("Hinf = %v, want ~1 (eventually referenced)", got)
	}
	never := CacheH(ref, h, 9, LInf{}, 5000)
	if never != 0 {
		t.Fatalf("Hinf of never-referenced value = %v", never)
	}
}

// Hinv = expected inverse waiting time.
func TestLInvExpectedInverseWaitingTime(t *testing.T) {
	// Deterministic reference: value 5 first referenced at Δt = 3.
	ref := &process.Deterministic{Seq: []int{0, 1, 2, 5, 5}}
	h := process.NewHistory(0)
	got := CacheH(ref, h, 5, LInv{}, 10)
	if !almostEqual(got, 1.0/3, 1e-12) {
		t.Fatalf("Hinv = %v, want 1/3", got)
	}
}

// Theorem 4: with a shared valid L, dominance of ECBs implies ordering of H.
func TestTheorem4DominanceImpliesHOrder(t *testing.T) {
	ls := []LFunc{LFixed{DT: 4}, NewLExp(3), NewLExp(20), LInv{}, LWindow{Inner: NewLExp(5), Remaining: 6}}
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 8
		bx := make(ECB, n)
		by := make(ECB, n)
		var cx, cy float64
		for i := 0; i < n; i++ {
			dy := rng.Float64() * 0.2
			dx := dy + rng.Float64()*0.2 // increment_x >= increment_y... not required; dominance is on cumulative
			cx += dx
			cy += dy
			bx[i] = cx
			by[i] = cy
		}
		if !Dominates(bx, by) {
			return true // vacuous (should not happen by construction)
		}
		for _, l := range ls {
			hx := HFromECB(bx, l)
			hy := HFromECB(by, l)
			if hx < hy-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 4 with arbitrary (not increment-wise) dominance: generate random
// non-decreasing ECBs, filter to dominating pairs.
func TestTheorem4ArbitraryDominatingPairs(t *testing.T) {
	rng := stats.NewRNG(77)
	ls := []LFunc{LFixed{DT: 5}, NewLExp(4), LInv{}}
	checked := 0
	for trial := 0; trial < 3000 && checked < 300; trial++ {
		mk := func() ECB {
			b := make(ECB, 6)
			var c float64
			for i := range b {
				c += rng.Float64() * 0.3
				b[i] = c
			}
			return b
		}
		bx, by := mk(), mk()
		if !Dominates(bx, by) {
			continue
		}
		checked++
		for _, l := range ls {
			if HFromECB(bx, l) < HFromECB(by, l)-1e-9 {
				t.Fatalf("dominance violated: Bx=%v By=%v L=%T", bx, by, l)
			}
		}
		if StronglyDominates(bx, by) {
			if HFromECB(bx, NewLExp(4)) <= HFromECB(by, NewLExp(4)) {
				t.Fatalf("strict dominance should give strict H order")
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d dominating pairs sampled", checked)
	}
}

// Section 5.2: for a stationary partner, HEEB ranks tuples by p(v) — the
// PROB ordering that Theorem 3 proves optimal.
func TestStationaryHEEBMatchesPROB(t *testing.T) {
	p := dist.NewTable(0, []float64{1, 2, 3, 4, 5})
	partner := &process.Stationary{P: p}
	h := process.NewHistory(0)
	l := NewLExp(6)
	prev := -1.0
	for v := 0; v <= 4; v++ {
		hv := JoinH(partner, h, v, l, 0)
		if hv <= prev {
			t.Fatalf("H not increasing with p(v): H(%d) = %v, prev %v", v, hv, prev)
		}
		prev = hv
	}
}

// Section 7's example: under sliding-window semantics, window-HEEB ranks
// x2 > x1 > x3 where PROB picks x1 and LIFE picks x3.
func TestSection7WindowRanking(t *testing.T) {
	// Stationary partner probabilities and remaining lifetimes.
	type cand struct {
		p float64
		l int
	}
	cands := []cand{
		{0.50, 1},  // x1
		{0.49, 50}, // x2
		{0.01, 51}, // x3
	}
	alpha := stats.AlphaForLifetime(10) // modest expected cache lifetime
	hs := make([]float64, len(cands))
	for i, c := range cands {
		lw := LWindow{Inner: LExp{Alpha: alpha}, Remaining: c.l}
		// Stationary partner: Pr{X = v} = c.p at every step.
		var sum float64
		horizon := HorizonFor(lw, 200)
		for dt := 1; dt <= horizon; dt++ {
			sum += c.p * lw.At(dt)
		}
		hs[i] = sum
	}
	if !(hs[1] > hs[0] && hs[0] > hs[2]) {
		t.Fatalf("window HEEB ranking = %v, want x2 > x1 > x3", hs)
	}
	// PROB's ordering prefers x1 over x2 — the shortsighted choice.
	if !(cands[0].p > cands[1].p) {
		t.Fatal("setup broken: PROB should prefer x1")
	}
	// LIFE's p·l ordering prefers x3 over x1 — the pessimistic choice.
	if !(cands[2].p*float64(cands[2].l) > cands[0].p*float64(cands[0].l)) {
		t.Fatal("setup broken: LIFE should prefer x3")
	}
}

// Corollary 3: time-incremental Hexp equals direct recomputation for
// independent streams.
func TestCorollary3TimeIncremental(t *testing.T) {
	partner := &process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(2, 10)}
	alpha := 7.0
	l := NewLExp(alpha)
	v := 30
	// History through t0-1 = 19, then extend to t0 = 20.
	h19 := process.NewHistory(make([]int, 20)...)
	prev := JoinH(partner, h19, v, l, 0)
	pNow := partner.Forecast(h19, 1).Prob(v) // Pr{X_{t0} = v} seen from t0-1
	h20 := process.NewHistory(make([]int, 21)...)
	direct := JoinH(partner, h20, v, l, 0)
	inc := JoinHStep(prev, alpha, pNow)
	if !almostEqual(direct, inc, 1e-6) {
		t.Fatalf("incremental %v != direct %v", inc, direct)
	}
}

// Corollary 3 across many steps and values (property form).
func TestQuickCorollary3(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		alpha := 2 + rng.Float64()*10
		l := NewLExp(alpha)
		partner := &process.LinearTrend{
			Slope:     rng.IntN(2) + 1,
			Intercept: rng.IntN(10) - 5,
			Noise:     dist.BoundedNormal(1+rng.Float64()*3, 12),
		}
		v := rng.IntN(60)
		t0 := 5 + rng.IntN(20)
		hPrev := process.NewHistory(make([]int, t0)...)
		hNow := process.NewHistory(make([]int, t0+1)...)
		prev := JoinH(partner, hPrev, v, l, 0)
		pNow := partner.Forecast(hPrev, 1).Prob(v)
		direct := JoinH(partner, hNow, v, l, 0)
		inc := JoinHStep(prev, alpha, pNow)
		return math.Abs(direct-inc) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Corollary 4: caching-problem time-incremental update.
func TestCorollary4CacheIncremental(t *testing.T) {
	ref := &process.Stationary{P: dist.NewTable(0, []float64{2, 1, 1, 4})}
	alpha := 9.0
	l := NewLExp(alpha)
	h := process.NewHistory(0)
	for v := 0; v <= 3; v++ {
		prev := CacheH(ref, h, v, l, 0)
		pNow := ref.Forecast(h, 1).Prob(v)
		direct := CacheH(ref, h, v, l, 0) // stationary: same at every t0
		inc := CacheHStep(prev, alpha, pNow)
		if !almostEqual(direct, inc, 1e-6) {
			t.Fatalf("v=%d: incremental %v != direct %v", v, inc, direct)
		}
	}
}

// Corollary 4 for a drifting (but independent) reference stream.
func TestCorollary4WithTrend(t *testing.T) {
	ref := &process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.NewUniform(-5, 5)}
	alpha := 6.0
	l := NewLExp(alpha)
	v := 14
	t0 := 10
	hPrev := process.NewHistory(make([]int, t0)...)  // t0-1 = 9
	hNow := process.NewHistory(make([]int, t0+1)...) // t0 = 10
	prev := CacheH(ref, hPrev, v, l, 0)
	pNow := ref.Forecast(hPrev, 1).Prob(v)
	direct := CacheH(ref, hNow, v, l, 0)
	inc := CacheHStep(prev, alpha, pNow)
	if !almostEqual(direct, inc, 1e-6) {
		t.Fatalf("incremental %v != direct %v", inc, direct)
	}
}

// Corollary 5: value-incremental transfer for linear trends.
func TestCorollary5ValueIncremental(t *testing.T) {
	slope := 2
	partner := &process.LinearTrend{Slope: slope, Intercept: 3, Noise: dist.BoundedNormal(2, 9)}
	// ECB of value v at time t equals ECB of v + a(t'-t) at time t'.
	tA, tB := 10, 16
	hA := process.NewHistory(make([]int, tA+1)...)
	hB := process.NewHistory(make([]int, tB+1)...)
	for _, v := range []int{20, 25, 30} {
		vB := TransferValue(slope, v, tA, tB)
		if vB != v+slope*(tB-tA) {
			t.Fatalf("TransferValue = %d", vB)
		}
		bA := JoinECB(partner, hA, v, 25)
		bB := JoinECB(partner, hB, vB, 25)
		for dt := 1; dt <= 25; dt++ {
			if !almostEqual(bA.At(dt), bB.At(dt), 1e-9) {
				t.Fatalf("v=%d dt=%d: %v != %v", v, dt, bA.At(dt), bB.At(dt))
			}
		}
		// And therefore equal H under any shared L.
		l := NewLExp(5)
		if !almostEqual(HFromECB(bA, l), HFromECB(bB, l), 1e-9) {
			t.Fatal("transferred H mismatch")
		}
	}
}

// MarginalH agrees with JoinH for a Gaussian walk (both are the marginal
// sum; JoinH goes through the PMF tables).
func TestMarginalHMatchesJoinH(t *testing.T) {
	w := &process.GaussianWalk{Drift: 1, Sigma: 2, Init: 0}
	h := process.NewHistory(50)
	l := NewLExp(10)
	for _, v := range []int{45, 50, 55, 70} {
		direct := JoinH(w, h, v, l, 0)
		marg := MarginalH(w, 50, v, l, 0)
		if !almostEqual(direct, marg, 1e-6) {
			t.Fatalf("v=%d: JoinH %v != MarginalH %v", v, direct, marg)
		}
	}
}

func TestCacheHRejectsMarkov(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CacheH on AR1 did not panic")
		}
	}()
	CacheH(&process.AR1{Phi0: 1, Phi1: 0.5, Sigma: 1}, process.NewHistory(0), 0, LInf{}, 10)
}
