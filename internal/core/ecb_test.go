package core

import (
	"math"
	"testing"
	"testing/quick"

	"stochstream/internal/dist"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestECBAtAndIncrement(t *testing.T) {
	b := ECB{0.2, 0.5, 0.5, 0.9}
	if got := b.At(1); got != 0.2 {
		t.Fatalf("At(1) = %v", got)
	}
	if got := b.At(4); got != 0.9 {
		t.Fatalf("At(4) = %v", got)
	}
	if got := b.At(10); got != 0.9 {
		t.Fatalf("At beyond horizon = %v, want plateau 0.9", got)
	}
	if got := b.Increment(1); got != 0.2 {
		t.Fatalf("Increment(1) = %v", got)
	}
	if got := b.Increment(2); !almostEqual(got, 0.3, 1e-12) {
		t.Fatalf("Increment(2) = %v", got)
	}
	if got := b.Increment(3); got != 0 {
		t.Fatalf("Increment(3) = %v", got)
	}
	if got := ECB(nil).At(5); got != 0 {
		t.Fatalf("empty ECB At = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At(0) did not panic")
		}
	}()
	b.At(0)
}

func TestJoinECBStationary(t *testing.T) {
	// Section 5.2: B_x(Δt) = p(v)·Δt for stationary partner.
	p := dist.NewTable(0, []float64{1, 3, 6}) // p(1)=0.3
	partner := &process.Stationary{P: p}
	h := process.NewHistory(0)
	b := JoinECB(partner, h, 1, 10)
	for dt := 1; dt <= 10; dt++ {
		if got := b.At(dt); !almostEqual(got, 0.3*float64(dt), 1e-9) {
			t.Fatalf("B(%d) = %v, want %v", dt, got, 0.3*float64(dt))
		}
	}
}

func TestJoinECBOfflineIsStepFunction(t *testing.T) {
	// Section 5.1: each occurrence of the joining value adds a unit step.
	partner := &process.Deterministic{Seq: []int{9, 5, 7, 5, 5, 2}}
	h := process.NewHistory(9) // t0 = 0
	b := JoinECB(partner, h, 5, 5)
	want := []float64{1, 1, 2, 3, 3} // matches at offsets 1, 3, 4
	for i, w := range want {
		if got := b[i]; !almostEqual(got, w, 1e-12) {
			t.Fatalf("B = %v, want %v", b, want)
		}
	}
}

func TestCacheECBStationary(t *testing.T) {
	// Section 5.2: B_x(Δt) = 1 − (1 − p)^Δt.
	p := dist.NewTable(0, []float64{1, 1, 2}) // p(2) = 0.5
	ref := &process.Stationary{P: p}
	h := process.NewHistory(0)
	b := CacheECB(ref, h, 2, 8)
	for dt := 1; dt <= 8; dt++ {
		want := 1 - math.Pow(0.5, float64(dt))
		if got := b.At(dt); !almostEqual(got, want, 1e-12) {
			t.Fatalf("B(%d) = %v, want %v", dt, got, want)
		}
	}
}

func TestCacheECBOfflineIsSingleStep(t *testing.T) {
	// Section 5.1: offline caching ECB jumps from 0 to 1 at the next
	// reference and stays there — the LFD ordering.
	ref := &process.Deterministic{Seq: []int{1, 2, 3, 2, 1}}
	h := process.NewHistory(1) // t0 = 0
	b := CacheECB(ref, h, 2, 4)
	want := []float64{1, 1, 1, 1}
	for i := range want {
		if !almostEqual(b[i], want[i], 1e-12) {
			t.Fatalf("B for 2 = %v", b)
		}
	}
	b3 := CacheECB(ref, h, 3, 4)
	want3 := []float64{0, 1, 1, 1}
	for i := range want3 {
		if !almostEqual(b3[i], want3[i], 1e-12) {
			t.Fatalf("B for 3 = %v", b3)
		}
	}
	// Never referenced again: identically zero.
	b9 := CacheECB(ref, h, 9, 4)
	for i := range b9 {
		if b9[i] != 0 {
			t.Fatalf("B for 9 = %v, want zeros", b9)
		}
	}
}

func TestCacheECBRejectsMarkov(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CacheECB on a random walk did not panic")
		}
	}()
	CacheECB(&process.GaussianWalk{Sigma: 1}, process.NewHistory(0), 0, 3)
}

func TestDominance(t *testing.T) {
	x := ECB{0.5, 1.0, 1.5}
	y := ECB{0.2, 0.4, 0.6}
	z := ECB{0.9, 0.9, 0.9}
	if !Dominates(x, y) || !StronglyDominates(x, y) {
		t.Fatal("x should strongly dominate y")
	}
	if Dominates(y, x) {
		t.Fatal("y should not dominate x")
	}
	// x and z cross: incomparable.
	if Comparable(x, z) {
		t.Fatal("x and z should be incomparable")
	}
	if !Comparable(x, y) {
		t.Fatal("x and y should be comparable")
	}
	// Equality dominates weakly but not strongly.
	if !Dominates(x, x) {
		t.Fatal("x should dominate itself")
	}
	if StronglyDominates(x, x) {
		t.Fatal("x should not strongly dominate itself")
	}
	// Everything dominates a zero ECB.
	if !Dominates(y, ECB{0, 0, 0}) {
		t.Fatal("y should dominate zero ECB")
	}
}

func TestDominanceDifferentLengthsUsePlateau(t *testing.T) {
	a := ECB{0.5}           // plateau 0.5
	b := ECB{0.1, 0.3, 0.7} // overtakes the plateau at Δt = 3
	if Dominates(a, b) || Dominates(b, a) {
		t.Fatal("a and b should be incomparable via plateau extension")
	}
	c := ECB{0.1, 0.2}
	if !Dominates(a, c) {
		t.Fatal("a should dominate c")
	}
}

func TestDominatedSubsetTotalOrder(t *testing.T) {
	// Totally ordered ECBs: the two smallest form the dominated subset.
	ecbs := []ECB{
		{0.9, 1.8}, // best
		{0.1, 0.2}, // worst
		{0.5, 1.0},
		{0.3, 0.6},
	}
	got := DominatedSubset(ecbs, 2)
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 indices", got)
	}
	seen := map[int]bool{}
	for _, i := range got {
		seen[i] = true
	}
	if !seen[1] || !seen[3] {
		t.Fatalf("dominated subset = %v, want {1, 3}", got)
	}
}

func TestDominatedSubsetWithIncomparableInside(t *testing.T) {
	// x and z are incomparable with each other but both dominated by w and
	// y': the pair {x, z} is still a valid dominated subset (the Figure 2 /
	// Corollary 2 scenario).
	w := ECB{1.0, 2.0, 3.0}
	y := ECB{0.9, 1.8, 2.7}
	x := ECB{0.8, 0.8, 0.8} // plateaus early
	z := ECB{0.1, 0.9, 1.0} // crosses x
	ecbs := []ECB{w, x, y, z}
	got := DominatedSubset(ecbs, 2)
	seen := map[int]bool{}
	for _, i := range got {
		seen[i] = true
	}
	if len(got) != 2 || !seen[1] || !seen[3] {
		t.Fatalf("dominated subset = %v, want {1, 3}", got)
	}
	// Asking to discard 3 of 4: w dominates everything, y is dominated by
	// w only, so {x, z, y} works.
	got3 := DominatedSubset(ecbs, 3)
	if len(got3) != 3 {
		t.Fatalf("want a 3-element dominated subset, got %v", got3)
	}
	for _, i := range got3 {
		if i == 0 {
			t.Fatalf("w (index 0) must never be in the dominated subset: %v", got3)
		}
	}
}

func TestDominatedSubsetNoneWhenAllIncomparable(t *testing.T) {
	// Pairwise crossing ECBs: no single candidate can be certified.
	ecbs := []ECB{
		{0.9, 0.9, 0.9},
		{0.1, 1.0, 1.0},
		{0.5, 0.5, 1.5},
	}
	if got := DominatedSubset(ecbs, 1); len(got) != 0 {
		t.Fatalf("expected empty subset, got %v", got)
	}
	// But discarding 2 of 3 is possible: {1,2}? Candidate 0 must dominate
	// both 1 and 2 — it does not (1.0 > 0.9, 1.5 > 0.9), so still empty.
	if got := DominatedSubset(ecbs, 2); len(got) != 0 {
		t.Fatalf("expected empty subset for want=2, got %v", got)
	}
}

func TestDominatedSubsetEdgeCases(t *testing.T) {
	if got := DominatedSubset(nil, 1); got != nil {
		t.Fatalf("nil candidates: %v", got)
	}
	if got := DominatedSubset([]ECB{{1}}, 0); got != nil {
		t.Fatalf("want 0: %v", got)
	}
	// A single candidate is trivially a dominated subset of itself... but
	// Corollary 2 requires dominators OUTSIDE V; with U = V no constraint
	// exists, so the closure is {0} and it is returned.
	if got := DominatedSubset([]ECB{{1}}, 1); len(got) != 1 {
		t.Fatalf("singleton: %v", got)
	}
}

// Property: the returned subset always satisfies Corollary 2's condition.
func TestQuickDominatedSubsetIsValid(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.IntN(8)
		ecbs := make([]ECB, n)
		for i := range ecbs {
			ecbs[i] = make(ECB, 4)
			var cum float64
			for j := range ecbs[i] {
				cum += rng.Float64()
				ecbs[i][j] = math.Round(cum*4) / 4 // coarse grid → frequent ties
			}
		}
		want := 1 + rng.IntN(n)
		v := DominatedSubset(ecbs, want)
		if len(v) > want {
			return false
		}
		inV := make([]bool, n)
		for _, i := range v {
			inV[i] = true
		}
		for _, vi := range v {
			for u := 0; u < n; u++ {
				if !inV[u] && !Dominates(ecbs[u], ecbs[vi]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowECB(t *testing.T) {
	b := ECB{0.5, 1.0, 1.5, 2.0}
	// No window: unchanged.
	if got := WindowECB(b, 0, 10, 0); &got[0] != &b[0] {
		t.Fatal("window 0 should return the ECB unchanged")
	}
	// Expired tuple (arrived 0, window 3, now 5): all zero.
	exp := WindowECB(b, 0, 5, 3)
	for _, v := range exp {
		if v != 0 {
			t.Fatalf("expired ECB = %v, want zeros", exp)
		}
	}
	// Two steps remaining: clipped at B(2) = 1.0.
	clip := WindowECB(b, 4, 5, 3) // remaining = 4+3-5 = 2
	want := ECB{0.5, 1.0, 1.0, 1.0}
	for i := range want {
		if !almostEqual(clip[i], want[i], 1e-12) {
			t.Fatalf("clipped = %v, want %v", clip, want)
		}
	}
}

// Section 5.5, zero drift: ECBs are totally ordered by distance from the
// current position — candidates closer to x_{t0} dominate farther ones.
func TestWalkDominanceZeroDrift(t *testing.T) {
	w := &process.GaussianWalk{Drift: 0, Sigma: 1, Init: 0}
	h := process.NewHistory(100)
	ecbFor := func(v int) ECB { return JoinECB(w, h, v, 40) }
	near, far := ecbFor(101), ecbFor(105)
	if !Dominates(near, far) {
		t.Fatal("closer tuple should dominate farther tuple under zero drift")
	}
	if !StronglyDominates(near, far) {
		t.Fatal("dominance should be strict for distinct distances")
	}
	// Symmetric distances: identical ECBs, mutual (weak) dominance.
	left, right := ecbFor(97), ecbFor(103)
	if !Dominates(left, right) || !Dominates(right, left) {
		t.Fatal("symmetric offsets should have equal ECBs")
	}
}

// Section 5.5, positive drift: dominance can break between tuples on
// opposite sides of the drifting mean.
func TestWalkDominanceBreaksWithDrift(t *testing.T) {
	w := &process.GaussianWalk{Drift: 2, Sigma: 1, Init: 0}
	h := process.NewHistory(0)
	// s1 barely ahead of the mean now (passed almost immediately, so its
	// ECB plateaus low), s2 far ahead (zero early benefit but a higher
	// plateau once the drift reaches it): s1 wins early, s2 wins late.
	b1 := JoinECB(w, h, 1, 30)
	b2 := JoinECB(w, h, 20, 30)
	if !StronglyDominates(b1, ECB{b2.At(1)}) && b2.At(1) == 0 {
		t.Log("sanity: s2 produces nothing at Δt=1")
	}
	if Comparable(b1, b2) {
		t.Fatalf("drifting walk should produce incomparable ECBs: b1 plateau %v, b2 plateau %v",
			b1.At(30), b2.At(30))
	}
}

// Section 5.4 (appendix P): for two tuples left of the partner trend, the
// farther one is strongly dominated.
func TestTrendDominanceLeftOfWindow(t *testing.T) {
	partner := &process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(2, 15)}
	h := process.NewHistory(make([]int, 51)...) // t0 = 50
	farther := JoinECB(partner, h, 30, 40)
	nearer := JoinECB(partner, h, 40, 40)
	if !Dominates(nearer, farther) {
		t.Fatal("tuple nearer the increasing trend (from the left) should dominate")
	}
	// And a pair straddling the trend is incomparable (x vs z of Figure 2).
	ahead := JoinECB(partner, h, 60, 40)
	behind := JoinECB(partner, h, 49, 40)
	if Comparable(ahead, behind) {
		t.Fatal("tuples straddling the trend should be incomparable")
	}
}

// Section 5.4, caching problem: with a trending reference stream and normal
// noise, incomparable database-tuple ECBs arise (so HEEB is needed and Ao
// does not apply — the case is not almost-stationary).
func TestTrendCachingIncomparableECBs(t *testing.T) {
	ref := &process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(3, 12)}
	h := process.NewHistory(make([]int, 51)...) // t0 = 50
	// A tuple at the current reference window center: referenced soon or
	// never (the window moves past).
	nearNow := CacheECB(ref, h, 52, 40)
	// A tuple ahead of the trend: nothing early, a near-certain reference
	// once the window arrives.
	ahead := CacheECB(ref, h, 60, 40)
	if Comparable(nearNow, ahead) {
		t.Fatalf("expected incomparable caching ECBs: near(1)=%v ahead(1)=%v near(40)=%v ahead(40)=%v",
			nearNow.At(1), ahead.At(1), nearNow.At(40), ahead.At(40))
	}
	// And the almost-stationary property fails: the pR-ordering of the two
	// values flips over time (value 52 likelier now, 60 likelier later).
	pNow52 := ref.Forecast(h, 1).Prob(52)
	pNow60 := ref.Forecast(h, 1).Prob(60)
	pLater52 := ref.Forecast(h, 9).Prob(52)
	pLater60 := ref.Forecast(h, 9).Prob(60)
	if !(pNow52 > pNow60 && pLater60 > pLater52) {
		t.Fatalf("ordering did not flip: now %v/%v later %v/%v", pNow52, pNow60, pLater52, pLater60)
	}
}
