package core

import (
	"testing"

	"stochstream/internal/dist"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func fcFixture(t *testing.T) ([2]process.Process, [2]*process.History) {
	t.Helper()
	procs := [2]process.Process{
		&process.LinearTrend{Slope: 1, Intercept: -2, Noise: dist.BoundedNormal(2, 9)},
		&process.AR1{Phi0: 10, Phi1: 0.6, Sigma: 3, Init: 25},
	}
	rng := stats.NewRNG(7)
	hists := [2]*process.History{
		process.NewHistory(procs[0].Generate(rng.Split(), 40)...),
		process.NewHistory(procs[1].Generate(rng.Split(), 40)...),
	}
	return procs, hists
}

// The cache must hand back the same forecasts the process would produce, and
// computing each exactly once must be observable through Len.
func TestForecastCacheMemoizes(t *testing.T) {
	procs, hists := fcFixture(t)
	fc := NewForecastCache(procs, hists)
	for _, s := range []StreamID{StreamR, StreamS} {
		for dt := 1; dt <= 12; dt++ {
			got := fc.At(s, dt)
			want := procs[s].Forecast(hists[s], dt)
			for v := -30; v <= 60; v++ {
				if got.Prob(v) != want.Prob(v) {
					t.Fatalf("stream %v dt %d v %d: cached %g != direct %g", s, dt, v, got.Prob(v), want.Prob(v))
				}
			}
		}
		if fc.Len(s) != 12 {
			t.Fatalf("stream %v Len = %d, want 12", s, fc.Len(s))
		}
		// Re-reading a shorter horizon must not grow the cache.
		fc.At(s, 3)
		if fc.Len(s) != 12 {
			t.Fatalf("stream %v Len after re-read = %d", s, fc.Len(s))
		}
	}
}

func TestForecastCacheRebindInvalidates(t *testing.T) {
	procs, hists := fcFixture(t)
	fc := NewForecastCache(procs, hists)
	before := fc.At(StreamR, 1).Prob(hists[0].Last() + 1)
	// Advance the history; without Rebind the stale forecast would survive.
	hists[0].Append(hists[0].Last() + 1)
	hists[1].Append(hists[1].Last())
	fc.Rebind(procs, hists)
	if fc.Len(StreamR) != 0 || fc.Len(StreamS) != 0 {
		t.Fatalf("Rebind kept %d/%d forecasts", fc.Len(StreamR), fc.Len(StreamS))
	}
	after := fc.At(StreamR, 1)
	want := procs[0].Forecast(hists[0], 1)
	if after.Prob(0) != want.Prob(0) {
		t.Fatalf("rebound forecast mismatch: %g != %g", after.Prob(0), want.Prob(0))
	}
	_ = before
}

// The cached scoring forms must be bitwise-identical to the direct ones: the
// loops are shared kernels, so any drift here is a real regression.
func TestCachedScoringBitwiseEqualsDirect(t *testing.T) {
	procs, hists := fcFixture(t)
	fc := NewForecastCache(procs, hists)
	l := LExp{Alpha: 12}
	lt := TabulateL(l, 0)
	for v := -10; v <= 50; v += 3 {
		for _, s := range []StreamID{StreamR, StreamS} {
			direct := JoinH(procs[s], hists[s], v, l, 0)
			cached := JoinHCached(fc, s, v, l, 0)
			if direct != cached {
				t.Fatalf("JoinH stream %v v %d: direct %v != cached %v", s, v, direct, cached)
			}
			tabbed := JoinHCached(fc, s, v, lt, 0)
			if direct != tabbed {
				t.Fatalf("JoinH stream %v v %d: direct %v != tabulated-L %v", s, v, direct, tabbed)
			}
			bd := BandJoinH(procs[s], hists[s], v, 3, l, 0)
			bc := BandJoinHCached(fc, s, v, 3, l, 0)
			if bd != bc {
				t.Fatalf("BandJoinH stream %v v %d: direct %v != cached %v", s, v, bd, bc)
			}
			ed := BandJoinECB(procs[s], hists[s], v, 2, 32)
			ec := BandJoinECBCached(fc, s, v, 2, 32)
			for i := range ed {
				if ed[i] != ec[i] {
					t.Fatalf("BandJoinECB stream %v v %d dt %d: %v != %v", s, v, i+1, ed[i], ec[i])
				}
			}
		}
	}
}

// LTable must be value-for-value interchangeable with its inner function,
// inside and beyond the tabulated horizon, with and without a window clip.
func TestLTableMatchesInner(t *testing.T) {
	l := LExp{Alpha: 7}
	lt := TabulateL(l, 0)
	horizon := HorizonFor(l, 0)
	for dt := 1; dt <= horizon+10; dt++ {
		if lt.At(dt) != l.At(dt) {
			t.Fatalf("LTable.At(%d) = %v, inner %v", dt, lt.At(dt), l.At(dt))
		}
	}
	if lt.Horizon(DefaultEps) != l.Horizon(DefaultEps) {
		t.Fatalf("Horizon %d != %d", lt.Horizon(DefaultEps), l.Horizon(DefaultEps))
	}
	wTab := LWindow{Inner: lt, Remaining: 5}
	wDir := LWindow{Inner: l, Remaining: 5}
	for dt := 1; dt <= 12; dt++ {
		if wTab.At(dt) != wDir.At(dt) {
			t.Fatalf("windowed LTable.At(%d) = %v, want %v", dt, wTab.At(dt), wDir.At(dt))
		}
	}
	if err := CheckLProperties(lt, horizon, true); err != nil {
		t.Fatal(err)
	}
}

// FlowExpectStepCached must decide exactly as the uncached entry point.
func TestFlowExpectStepCachedEquivalent(t *testing.T) {
	procs, hists := fcFixture(t)
	cands := make([]Candidate, 9)
	for i := range cands {
		cands[i] = Candidate{Value: 20 + i, Stream: StreamID(i % 2), Age: i % 4}
	}
	for _, window := range []int{0, 3} {
		want, err := FlowExpectStepWindow(cands, procs, hists, 6, 8, window)
		if err != nil {
			t.Fatal(err)
		}
		fc := NewForecastCache(procs, hists)
		got, err := FlowExpectStepCached(cands, fc, 6, 8, window)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Keep) != len(want.Keep) || got.ExpectedBenefit != want.ExpectedBenefit {
			t.Fatalf("window %d: cached %+v != direct %+v", window, got, want)
		}
		for i := range got.Keep {
			if got.Keep[i] != want.Keep[i] {
				t.Fatalf("window %d: keep[%d] = %d, want %d", window, i, got.Keep[i], want.Keep[i])
			}
		}
	}
}
