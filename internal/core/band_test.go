package core

import (
	"testing"
	"testing/quick"

	"stochstream/internal/dist"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func TestBandProb(t *testing.T) {
	u := dist.NewUniform(0, 9)
	if got := BandProb(u, 5, 0); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("eps=0: %v", got)
	}
	if got := BandProb(u, 5, 2); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("eps=2: %v", got)
	}
	// Band clipped at the support edge.
	if got := BandProb(u, 0, 3); !almostEqual(got, 0.4, 1e-12) {
		t.Fatalf("edge band: %v", got)
	}
	if got := BandProb(u, 100, 2); got != 0 {
		t.Fatalf("far band: %v", got)
	}
}

func TestBandJoinECBReducesToJoinECB(t *testing.T) {
	partner := &process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(2, 10)}
	h := process.NewHistory(make([]int, 11)...)
	for _, v := range []int{5, 10, 15} {
		a := JoinECB(partner, h, v, 20)
		b := BandJoinECB(partner, h, v, 0, 20)
		for dt := 1; dt <= 20; dt++ {
			if !almostEqual(a.At(dt), b.At(dt), 1e-12) {
				t.Fatalf("eps=0 mismatch at v=%d dt=%d", v, dt)
			}
		}
	}
}

func TestBandJoinECBMonotoneInEps(t *testing.T) {
	partner := &process.Stationary{P: dist.BoundedNormal(3, 12)}
	h := process.NewHistory(0)
	prev := BandJoinECB(partner, h, 2, 0, 10)
	for eps := 1; eps <= 4; eps++ {
		cur := BandJoinECB(partner, h, 2, eps, 10)
		if !Dominates(cur, prev) {
			t.Fatalf("widening the band must not reduce the ECB (eps=%d)", eps)
		}
		prev = cur
	}
}

func TestBandJoinHMatchesHandComputation(t *testing.T) {
	// Stationary uniform partner on [0,9]: band prob of v=5, eps=1 is 0.3.
	partner := &process.Stationary{P: dist.NewUniform(0, 9)}
	h := process.NewHistory(0)
	l := LFixed{DT: 4}
	got := BandJoinH(partner, h, 5, 1, l, 10)
	if !almostEqual(got, 0.3*4, 1e-12) {
		t.Fatalf("BandJoinH = %v, want 1.2", got)
	}
}

func TestOptOfflineBandJoinTrivial(t *testing.T) {
	// R produces 10 at t=0; S produces 12 at t=1: joins only when eps >= 2.
	r := []int{10, 0}
	s := []int{99, 12}
	if got := OptOfflineBandJoin(r, s, 1, 1, 0); got.Total != 0 {
		t.Fatalf("eps=1 Total = %d, want 0", got.Total)
	}
	if got := OptOfflineBandJoin(r, s, 1, 2, 0); got.Total != 1 {
		t.Fatalf("eps=2 Total = %d, want 1", got.Total)
	}
}

func TestOptOfflineBandJoinEpsZeroDelegates(t *testing.T) {
	rng := stats.NewRNG(5)
	r := make([]int, 20)
	s := make([]int, 20)
	for i := range r {
		r[i] = rng.IntN(5)
		s[i] = rng.IntN(5)
	}
	a := OptOfflineJoin(r, s, 2, 0)
	b := OptOfflineBandJoin(r, s, 2, 0, 0)
	if a.Total != b.Total {
		t.Fatalf("eps=0 mismatch: %d vs %d", a.Total, b.Total)
	}
}

// Brute force for band joins mirrors bruteOptJoin with a band predicate.
func bruteOptBandJoin(r, s []int, k, eps, window int) int {
	n := len(r)
	type tup struct {
		stream  StreamID
		arrived int
	}
	valueOf := func(t tup) int {
		if t.stream == StreamR {
			return r[t.arrived]
		}
		return s[t.arrived]
	}
	match := func(a, b int) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= eps
	}
	var best int
	var rec func(t int, cache []tup, acc int)
	rec = func(t int, cache []tup, acc int) {
		if t == n {
			if acc > best {
				best = acc
			}
			return
		}
		arrivals := []tup{{StreamR, t}, {StreamS, t}}
		gained := 0
		for _, a := range arrivals {
			for _, c := range cache {
				if c.stream != a.stream && match(valueOf(c), valueOf(a)) {
					if window <= 0 || t-c.arrived <= window {
						gained++
					}
				}
			}
		}
		pool := append(append([]tup(nil), cache...), arrivals...)
		m := len(pool)
		for mask := 0; mask < 1<<m; mask++ {
			cnt := 0
			for i := 0; i < m; i++ {
				if mask&(1<<i) != 0 {
					cnt++
				}
			}
			if cnt > k {
				continue
			}
			next := make([]tup, 0, cnt)
			for i := 0; i < m; i++ {
				if mask&(1<<i) != 0 {
					next = append(next, pool[i])
				}
			}
			rec(t+1, next, acc+gained)
		}
	}
	rec(0, nil, 0)
	return best
}

func TestQuickOptOfflineBandJoinMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.IntN(3)
		k := 1 + rng.IntN(2)
		eps := 1 + rng.IntN(2)
		r := make([]int, n)
		s := make([]int, n)
		for i := range r {
			r[i] = rng.IntN(6)
			s[i] = rng.IntN(6)
		}
		window := 0
		if rng.IntN(2) == 1 {
			window = 1 + rng.IntN(3)
		}
		return OptOfflineBandJoin(r, s, k, eps, window).Total == bruteOptBandJoin(r, s, k, eps, window)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptOfflineBandJoinPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatch did not panic")
		}
	}()
	OptOfflineBandJoin([]int{1}, []int{1, 2}, 1, 1, 0)
}
