package core

import (
	"sort"

	"stochstream/internal/dist"
	"stochstream/internal/process"
)

// Band-join support: the paper's Section 8 lists generalization to
// non-equality joins as future work. A band join with radius ε matches
// tuples whose join-attribute values differ by at most ε; the framework
// carries over by replacing the point probability Pr{X = v} with the band
// probability Pr{|X − v| ≤ ε} in every ECB and HEEB sum. ε = 0 recovers the
// equijoin forms exactly.

// BandProb returns Pr{v−eps ≤ X ≤ v+eps} for X ~ p.
func BandProb(p dist.PMF, v, eps int) float64 {
	if eps == 0 {
		return p.Prob(v)
	}
	lo, hi := p.Support()
	a, b := max(lo, v-eps), min(hi, v+eps)
	var s float64
	for x := a; x <= b; x++ {
		s += p.Prob(x)
	}
	return s
}

// bandJoinECBSum is the tabulation kernel shared by BandJoinECB and its
// cached variant; both run the identical loop over the identical forecasts.
func bandJoinECBSum(forecast func(dt int) dist.PMF, v, eps, horizon int) ECB {
	if horizon < 1 {
		panic("core: BandJoinECB requires horizon >= 1")
	}
	b := make(ECB, horizon)
	var cum float64
	for dt := 1; dt <= horizon; dt++ {
		cum += BandProb(forecast(dt), v, eps)
		b[dt-1] = cum
	}
	return b
}

// BandJoinECB generalizes Lemma 1 to band joins: B_x(Δt) =
// Σ_{t=t0+1}^{t0+Δt} Pr{|X^partner_t − v| ≤ eps | x̄_{t0}}.
func BandJoinECB(partner process.Process, h *process.History, v, eps, horizon int) ECB {
	return bandJoinECBSum(func(dt int) dist.PMF { return partner.Forecast(h, dt) }, v, eps, horizon)
}

// BandJoinECBCached is BandJoinECB reading the partner forecasts from a
// per-decision ForecastCache — the dominance prefilter tabulates one ECB per
// candidate, so sharing the forecasts across candidates removes the
// O(candidates × horizon) Forecast re-derivation.
func BandJoinECBCached(fc *ForecastCache, partner StreamID, v, eps, horizon int) ECB {
	return bandJoinECBSum(func(dt int) dist.PMF { return fc.At(partner, dt) }, v, eps, horizon)
}

// bandJoinHSum is the summation kernel shared by BandJoinH and
// BandJoinHCached (see joinHSum for the equivalence contract).
func bandJoinHSum(forecast func(dt int) dist.PMF, v, eps int, l LFunc, fallbackHorizon int) float64 {
	horizon := HorizonFor(l, fallbackHorizon)
	var sum float64
	for dt := 1; dt <= horizon; dt++ {
		p := BandProb(forecast(dt), v, eps)
		if p != 0 {
			sum += p * l.At(dt)
		}
	}
	return sum
}

// BandJoinH generalizes HEEB's joining score to band joins.
func BandJoinH(partner process.Process, h *process.History, v, eps int, l LFunc, fallbackHorizon int) float64 {
	return bandJoinHSum(func(dt int) dist.PMF { return partner.Forecast(h, dt) }, v, eps, l, fallbackHorizon)
}

// BandJoinHCached is BandJoinH reading the partner forecasts from a
// per-decision ForecastCache (see JoinHCached).
func BandJoinHCached(fc *ForecastCache, partner StreamID, v, eps int, l LFunc, fallbackHorizon int) float64 {
	return bandJoinHSum(func(dt int) dist.PMF { return fc.At(partner, dt) }, v, eps, l, fallbackHorizon)
}

// OptOfflineBandJoin computes the MAX-subset offline optimum for a band join
// with radius eps (eps = 0 degenerates to OptOfflineJoin). A tuple arriving
// at time a matches every partner arrival at time t > a with a value within
// eps (and within the sliding window when window > 0).
func OptOfflineBandJoin(r, s []int, k, eps, window int) OptOfflineResult {
	if eps == 0 {
		return OptOfflineJoin(r, s, k, window)
	}
	n := len(r)
	if len(s) != n {
		panic("core: OptOfflineBandJoin requires equally long streams")
	}
	if k < 1 || n == 0 {
		return OptOfflineResult{}
	}
	// occurrences[stream][v]: times at which value v arrives on stream.
	occ := [2]map[int][]int{make(map[int][]int), make(map[int][]int)}
	for t := 0; t < n; t++ {
		occ[0][r[t]] = append(occ[0][r[t]], t)
		occ[1][s[t]] = append(occ[1][s[t]], t)
	}
	matchTimes := func(stream StreamID, v, arrived int) []int {
		var all []int
		for u := v - eps; u <= v+eps; u++ {
			all = append(all, occ[stream.Partner()][u]...)
		}
		sort.Ints(all)
		i := sort.SearchInts(all, arrived+1)
		out := all[i:]
		if window > 0 {
			j := sort.SearchInts(out, arrived+window+1)
			out = out[:j]
		}
		return out
	}
	return optOfflineWithMatches(r, s, k, matchTimes)
}
