package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"stochstream/internal/core"
	"stochstream/internal/flightrec"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/process"
)

// Flight-recorder wiring: everything the operator does with
// Config.Flight lives here. engine.go's hot path only carries the
// j.rec != nil branches; the clock seam, the bundle plumbing and the
// lifecycle helpers are below.

// nowNanos is the engine's single wall-clock seam. The flight recorder and
// the step-latency telemetry both read time through it (via EnsureClock /
// j.now), so a test that pins flightrec.LogicalClock makes the whole
// operator — spans, latencies, exports — byte-deterministic.
func nowNanos() int64 {
	//lint:ignore dettaint observability timestamps only; the clock value never feeds a decision
	return time.Now().UnixNano()
}

// initFlight wires Config.Flight into the operator: the clock seam, the
// ladder's rung spans, bundle-on-downgrade, and — when telemetry is also
// configured — the registry's clock and its /spans and /bundle endpoints.
// Called once from NewJoin; lad is nil for non-ladder policies.
func (j *Join) initFlight(lad *policy.Ladder) {
	rec := j.cfg.Flight
	if rec == nil {
		j.now = nowNanos
		return
	}
	j.rec = rec
	rec.EnsureClock(nowNanos)
	j.now = rec.Clock()
	if lad != nil {
		lad.Flight = rec
		prev := lad.OnDowngrade
		lad.OnDowngrade = func(d policy.Downgrade) {
			if prev != nil {
				prev(d)
			}
			// Mark, don't dump: the downgrade fires mid-decision, when the
			// cache is mid-mutation. finishStep flushes the mark once the
			// step's state is consistent, so the bundle's checkpoint is the
			// exact post-step operator state.
			if j.pendingBundle == "" {
				j.pendingBundle = "downgrade"
			}
		}
	}
	if reg := j.cfg.Telemetry; reg != nil {
		reg.SetClock(j.now)
		reg.SetSpansFunc(func(n int) any { return rec.LastSpans(n) })
		// The HTTP bundle trigger may fire concurrently with Step, so it
		// skips the checkpoint source (Join is not concurrency-safe); the
		// recorder and registry snapshots are. Engine-thread callers use
		// DumpBundle for a bundle with state.
		reg.SetBundleFunc(func() (string, error) {
			return rec.WriteBundle(
				flightrec.BundleInfo{Reason: "signal", Step: rec.CurrentStep()},
				j.telemetrySources(),
			)
		})
	}
}

// DumpBundle writes a diagnostics bundle — spans, lifecycle, telemetry,
// downgrade trace and a checkpoint of the current state — and returns its
// directory. Call it from the stepping goroutine (it checkpoints). The
// engine also dumps automatically on recovered panics, invariant failures
// and ladder downgrades.
func (j *Join) DumpBundle(reason string) (string, error) {
	if j.rec == nil {
		return "", fmt.Errorf("engine: no flight recorder configured")
	}
	return j.rec.WriteBundle(
		flightrec.BundleInfo{Reason: reason, Step: j.time - 1},
		j.bundleSources(),
	)
}

// autoDumpBundle is DumpBundle for fault paths: it swallows every error and
// recovers every panic, because the fault being recorded must stay the
// primary failure.
func (j *Join) autoDumpBundle(reason string) {
	if j.rec == nil {
		return
	}
	defer func() { _ = recover() }()
	_, _ = j.DumpBundle(reason)
}

// bundleSources assembles the caller-side bundle inputs: always a
// checkpoint, plus telemetry and downgrade-trace snapshots when a registry
// is configured.
func (j *Join) bundleSources() flightrec.BundleSources {
	src := j.telemetrySources()
	src.Checkpoint = j.Checkpoint
	return src
}

// telemetrySources is bundleSources without the checkpoint — safe off the
// stepping goroutine.
func (j *Join) telemetrySources() flightrec.BundleSources {
	var src flightrec.BundleSources
	if reg := j.cfg.Telemetry; reg != nil {
		src.Telemetry = reg.WriteJSON
		src.Downgrades = func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(reg.Downgrades().Records())
		}
	}
	return src
}

// closeStep ends one step's root span and flushes any bundle dump a
// downgrade requested mid-step. stepCore calls it on every exit path, so a
// batch still dumps one bundle per downgraded step, with the checkpoint
// taken at that step's (consistent) end state — not the batch's.
func (j *Join) closeStep(sp flightrec.Active, pairs, evictions int) {
	if j.rec == nil {
		return
	}
	j.rec.EndStep(sp, pairs, int64(evictions))
	if j.pendingBundle != "" {
		reason := j.pendingBundle
		j.pendingBundle = ""
		j.autoDumpBundle(reason)
	}
}

// observeStep records the latency-histogram observation and the inline
// counters for n steps' worth of work. Step passes n = 1; StepBatch passes
// the batch length, amortizing one clock-read pair and one histogram
// observation across the whole batch (see docs/observability.md).
func (j *Join) observeStep(startNs int64, pairs, evictions, n int) {
	if j.stepLatency == nil {
		return
	}
	j.stepLatency.ObserveDuration(j.now() - startNs)
	j.stepCount.Add(int64(n))
	j.pairCount.Add(int64(pairs))
	j.evictCount.Add(int64(evictions))
}

// lifeTuple records one lifecycle event for a tuple's key when the flight
// recorder tracks it. Callers guard on j.rec != nil.
func (j *Join) lifeTuple(kind flightrec.LifeKind, step int, tp join.Tuple, partner int) {
	if tp.Value == process.NoValue || !j.rec.Sampled(tp.Value) {
		return
	}
	j.rec.Life(tp.Value, flightrec.LifeEvent{
		Step:    step,
		Kind:    kind,
		Stream:  streamName(tp.Stream),
		TupleID: tp.ID,
		Partner: partner,
	})
}

// lifeKey is lifeTuple for events on a bare arrival key with no tuple ID
// (a band-join match observed from the arrival's side).
func (j *Join) lifeKey(kind flightrec.LifeKind, step, key int, stream core.StreamID, partner int) {
	if key == process.NoValue || !j.rec.Sampled(key) {
		return
	}
	j.rec.Life(key, flightrec.LifeEvent{
		Step:    step,
		Kind:    kind,
		Stream:  streamName(stream),
		TupleID: -1,
		Partner: partner,
	})
}

// streamName returns the constant wire name for a stream, so lifecycle
// events allocate nothing.
func streamName(s core.StreamID) string {
	if s == core.StreamR {
		return "R"
	}
	return "S"
}
