package engine

import (
	"math"
	"testing"

	"stochstream/internal/dist"
	"stochstream/internal/process"
)

// The PR-4 satellite: every invalid configuration a user can assemble —
// including stream-model parameterizations that previously only panicked
// deep inside a run, when the first forecast was materialized — must come
// back from NewJoin/Config.Validate as an error.
func TestConfigValidateRejectsInvalid(t *testing.T) {
	noise := dist.BoundedNormal(2, 6)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"cache-size-zero", Config{CacheSize: 0}},
		{"cache-size-negative", Config{CacheSize: -3}},
		{"window-negative", Config{CacheSize: 4, Window: -1}},
		{"band-negative", Config{CacheSize: 4, Band: -2}},
		{"gaussian-walk-zero-sigma", Config{CacheSize: 4,
			Procs: [2]process.Process{&process.GaussianWalk{Sigma: 0}, &process.GaussianWalk{Sigma: 1}}}},
		{"gaussian-walk-nan-sigma", Config{CacheSize: 4,
			Procs: [2]process.Process{&process.GaussianWalk{Sigma: math.NaN()}, &process.GaussianWalk{Sigma: 1}}}},
		{"gaussian-walk-inf-drift", Config{CacheSize: 4,
			Procs: [2]process.Process{&process.GaussianWalk{Sigma: 1, Drift: math.Inf(1)}, &process.GaussianWalk{Sigma: 1}}}},
		{"ar1-explosive", Config{CacheSize: 4,
			Procs: [2]process.Process{&process.AR1{Phi1: 1.5, Sigma: 1}, &process.AR1{Phi1: 0.5, Sigma: 1}}}},
		{"ar1-negative-sigma", Config{CacheSize: 4,
			Procs: [2]process.Process{&process.AR1{Phi1: 0.5, Sigma: -1}, &process.AR1{Phi1: 0.5, Sigma: 1}}}},
		{"stationary-nil-dist", Config{CacheSize: 4,
			Procs: [2]process.Process{&process.Stationary{}, &process.Stationary{P: noise}}}},
		{"linear-trend-nil-noise", Config{CacheSize: 4,
			Procs: [2]process.Process{&process.LinearTrend{Slope: 1}, &process.LinearTrend{Slope: 1, Noise: noise}}}},
		{"general-trend-nil-f", Config{CacheSize: 4,
			Procs: [2]process.Process{&process.GeneralTrend{Noise: noise}, &process.LinearTrend{Noise: noise}}}},
		{"random-walk-nil-step", Config{CacheSize: 4,
			Procs: [2]process.Process{&process.RandomWalk{}, &process.RandomWalk{Step: noise}}}},
		{"markov-bad-rows", Config{CacheSize: 4,
			Procs: [2]process.Process{&process.MarkovChain{Lo: 0, P: [][]float64{{0.5, 0.2}, {0.5, 0.5}}, Init: 0},
				&process.Stationary{P: noise}}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err == nil {
				t.Fatal("Validate accepted an invalid configuration")
			}
			if _, err := NewJoin(tc.cfg); err == nil {
				t.Fatal("NewJoin accepted an invalid configuration")
			}
		})
	}
}

func TestConfigValidateAcceptsValid(t *testing.T) {
	noise := dist.BoundedNormal(2, 6)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"bare", Config{CacheSize: 1}},
		{"window-band", Config{CacheSize: 8, Window: 10, Band: 3}},
		{"trend-models", Config{CacheSize: 8, Procs: trendProcs()}},
		{"ar1-unit-root", Config{CacheSize: 8,
			Procs: [2]process.Process{&process.AR1{Phi1: 1, Phi0: 0.5, Sigma: 2}, &process.AR1{Phi1: 0.9, Sigma: 2}}}},
		{"deterministic", Config{CacheSize: 8,
			Procs: [2]process.Process{&process.Deterministic{Seq: []int{1, 2}}, &process.Deterministic{}}}},
		{"one-sided-model", Config{CacheSize: 8,
			Procs: [2]process.Process{&process.Stationary{P: noise}, nil}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err != nil {
				t.Fatalf("Validate rejected a valid configuration: %v", err)
			}
		})
	}
}
