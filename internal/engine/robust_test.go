package engine

import (
	"errors"
	"math"
	"testing"

	"stochstream/internal/join"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func TestStepCheckedRejectsBadKeys(t *testing.T) {
	j, err := NewJoin(Config{CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	j.Step(Tuple{Key: 1}, Tuple{Key: 2})
	before := j.Metrics()
	snap := j.Snapshot()
	for _, tc := range []struct{ r, s int }{
		{math.MaxInt64, 5},
		{5, math.MinInt64},
		{MinKey - 2, 5}, // just below the domain, and not the NoValue sentinel
	} {
		if _, err := j.StepChecked(Tuple{Key: tc.r}, Tuple{Key: tc.s}); !errors.Is(err, ErrBadTuple) {
			t.Fatalf("keys (%d, %d): got %v, want ErrBadTuple", tc.r, tc.s, err)
		}
	}
	if after := j.Metrics(); after != before {
		t.Fatalf("rejected step mutated metrics:\n  before %+v\n  after  %+v", before, after)
	}
	if !snapshotsEqual(j.Snapshot(), snap) {
		t.Fatal("rejected step mutated the cache")
	}
	if err := j.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStepCheckedAllowsNoValueAndDomainKeys(t *testing.T) {
	j, err := NewJoin(Config{CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ r, s int }{
		{process.NoValue, 5},
		{MinKey, MaxKey},
		{0, 0},
	} {
		if _, err := j.StepChecked(Tuple{Key: tc.r}, Tuple{Key: tc.s}); err != nil {
			t.Fatalf("keys (%d, %d): %v", tc.r, tc.s, err)
		}
	}
	if got, want := j.Metrics().Steps, 3; got != want {
		t.Fatalf("steps = %d, want %d", got, want)
	}
}

// panicPolicy blows up after a set number of decisions.
type panicPolicy struct{ after, n int }

func (p *panicPolicy) Name() string                  { return "PANIC" }
func (p *panicPolicy) Reset(join.Config, *stats.RNG) { p.n = 0 }
func (p *panicPolicy) Evict(_ *join.State, cands []join.Tuple, n int) []int {
	if p.n++; p.n > p.after {
		panic("policy bug")
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestStepCheckedConvertsPanicToError(t *testing.T) {
	// With CacheSize 2, step 0 admits both arrivals without a decision; the
	// first Evict happens at step 1, the second (the panicking one) at step 2.
	j, err := NewJoin(Config{CacheSize: 2, Policy: &panicPolicy{after: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := j.StepChecked(Tuple{Key: i}, Tuple{Key: i + 10}); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if _, err := j.StepChecked(Tuple{Key: 7}, Tuple{Key: 8}); !errors.Is(err, ErrStepFailed) {
		t.Fatalf("got %v, want ErrStepFailed", err)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	mk := func(cfg Config, steps int) *Join {
		j, err := NewJoin(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, s := ckptTrace(steps)
		for i := 0; i < steps; i++ {
			j.Step(r[i], s[i])
		}
		if err := j.CheckInvariants(); err != nil {
			t.Fatalf("healthy operator: %v", err)
		}
		return j
	}

	t.Run("cache-order", func(t *testing.T) {
		j := mk(Config{CacheSize: 6}, 40)
		j.cache[0], j.cache[1] = j.cache[1], j.cache[0]
		if err := j.CheckInvariants(); !errors.Is(err, ErrInvariant) {
			t.Fatalf("got %v, want ErrInvariant", err)
		}
	})
	t.Run("equi-index-drift", func(t *testing.T) {
		j := mk(Config{CacheSize: 6}, 40)
		// Tamper: change a cached value without re-indexing.
		j.cache[0].t.Value += 1000000
		if err := j.CheckInvariants(); !errors.Is(err, ErrInvariant) {
			t.Fatalf("got %v, want ErrInvariant", err)
		}
	})
	t.Run("ord-index-drift", func(t *testing.T) {
		j := mk(Config{CacheSize: 6, Band: 2}, 40)
		side := j.cache[0].t.Stream
		j.ord[side] = j.ord[side][:len(j.ord[side])-1]
		if err := j.CheckInvariants(); !errors.Is(err, ErrInvariant) {
			t.Fatalf("got %v, want ErrInvariant", err)
		}
	})
	t.Run("over-budget", func(t *testing.T) {
		j := mk(Config{CacheSize: 6}, 40)
		j.cfg.CacheSize = len(j.cache) - 1
		if err := j.CheckInvariants(); !errors.Is(err, ErrInvariant) {
			t.Fatalf("got %v, want ErrInvariant", err)
		}
	})
	t.Run("window-expired", func(t *testing.T) {
		j := mk(Config{CacheSize: 6, Window: 8}, 40)
		j.time += 100
		if err := j.CheckInvariants(); !errors.Is(err, ErrInvariant) {
			t.Fatalf("got %v, want ErrInvariant", err)
		}
	})
}

func TestFallbackCounts(t *testing.T) {
	j, err := NewJoin(Config{CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := j.FallbackCounts(); ok {
		t.Fatal("non-ladder policy reported fallback counts")
	}
}
