package engine

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"stochstream/internal/core"
	"stochstream/internal/dist"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func trendProcs() [2]process.Process {
	return [2]process.Process{
		&process.LinearTrend{Slope: 1, Intercept: -1, Noise: dist.BoundedNormal(1, 10)},
		&process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(2, 15)},
	}
}

func TestNewJoinValidation(t *testing.T) {
	if _, err := NewJoin(Config{CacheSize: 0}); err == nil {
		t.Fatal("cache 0 should error")
	}
	// No models: defaults to RAND.
	j, err := NewJoin(Config{CacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if j.policy.Name() != "RAND" {
		t.Fatalf("default policy = %s", j.policy.Name())
	}
	// Models present: defaults to HEEB.
	j2, err := NewJoin(Config{CacheSize: 2, Procs: trendProcs()})
	if err != nil {
		t.Fatal(err)
	}
	if j2.policy.Name() != "HEEB" {
		t.Fatalf("model default policy = %s", j2.policy.Name())
	}
}

func TestStepEmitsPairsWithPayloads(t *testing.T) {
	j, err := NewJoin(Config{CacheSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	// t=0: R(1,"a"), S(9).
	if got := j.Step(Tuple{Key: 1, Payload: "a"}, Tuple{Key: 9}); len(got) != 0 {
		t.Fatalf("unexpected pairs %v", got)
	}
	// t=1: S arrival 1 joins cached R(1,"a").
	got := j.Step(Tuple{Key: 8}, Tuple{Key: 1, Payload: "b"})
	if len(got) != 1 {
		t.Fatalf("pairs = %v", got)
	}
	p := got[0]
	if p.Time != 1 || p.R.Payload != "a" || p.S.Payload != "b" || p.R.Key != 1 || p.S.Key != 1 {
		t.Fatalf("pair = %+v", p)
	}
}

func TestStepEmitsSameTimePairs(t *testing.T) {
	j, _ := NewJoin(Config{CacheSize: 4})
	got := j.Step(Tuple{Key: 5, Payload: "r"}, Tuple{Key: 5, Payload: "s"})
	if len(got) != 1 || got[0].R.Payload != "r" || got[0].S.Payload != "s" {
		t.Fatalf("same-time pair missing: %v", got)
	}
}

func TestStepHonorsWindowAndBand(t *testing.T) {
	j, _ := NewJoin(Config{CacheSize: 10, Window: 1})
	j.Step(Tuple{Key: 1}, Tuple{Key: 100})
	// One step later: within window.
	if got := j.Step(Tuple{Key: 200}, Tuple{Key: 1}); len(got) != 1 {
		t.Fatalf("within window: %v", got)
	}
	// Two steps after arrival: expired.
	if got := j.Step(Tuple{Key: 201}, Tuple{Key: 1}); len(got) != 0 {
		t.Fatalf("expired tuple joined: %v", got)
	}

	b, _ := NewJoin(Config{CacheSize: 10, Band: 2})
	b.Step(Tuple{Key: 10}, Tuple{Key: 100})
	if got := b.Step(Tuple{Key: 200}, Tuple{Key: 12}); len(got) != 1 {
		t.Fatalf("band join missing: %v", got)
	}
	if got := b.Step(Tuple{Key: 201}, Tuple{Key: 13}); len(got) != 0 {
		t.Fatalf("outside band joined: %v", got)
	}
}

// The operator's pair count must agree exactly with the batch simulator's
// join count under the same policy and inputs.
func TestOperatorAgreesWithSimulator(t *testing.T) {
	procs := trendProcs()
	rng := stats.NewRNG(9)
	n := 800
	r := procs[0].Generate(rng.Split(), n)
	s := procs[1].Generate(rng.Split(), n)

	mk := func() join.Policy {
		return policy.NewHEEB(policy.HEEBOptions{Mode: policy.HEEBDirect, LifetimeEstimate: 3})
	}
	sim := join.Run(r, s, mk(), join.Config{CacheSize: 8, Warmup: 0, Procs: procs}, stats.NewRNG(1))

	j, err := NewJoin(Config{CacheSize: 8, Procs: procs, Policy: mk(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pairs := 0
	sameTime := 0
	for t2 := 0; t2 < n; t2++ {
		for _, p := range j.Step(Tuple{Key: r[t2]}, Tuple{Key: s[t2]}) {
			if p.SameTime {
				sameTime++
			}
			pairs++
		}
	}
	// The simulator excludes same-time pairs (they are policy-independent);
	// the operator emits them, tagged. Subtract to compare.
	if pairs-sameTime != sim.TotalJoins {
		t.Fatalf("operator pairs %d (same-time %d) != simulator joins %d", pairs, sameTime, sim.TotalJoins)
	}
	got := j.Metrics()
	if got.Steps != n || got.Pairs != pairs || got.SameTimePairs != sameTime || got.CacheLen != 8 {
		t.Fatalf("metrics = %+v", got)
	}
}

func TestSnapshotTracksCache(t *testing.T) {
	j, _ := NewJoin(Config{CacheSize: 3})
	j.Step(Tuple{Key: 1}, Tuple{Key: 2})
	snap := j.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap[0].Stream != core.StreamR || snap[1].Stream != core.StreamS {
		t.Fatalf("snapshot order = %v", snap)
	}
	j.Step(Tuple{Key: 3}, Tuple{Key: 4})
	if got := len(j.Snapshot()); got != 3 {
		t.Fatalf("cache len = %d, want 3 (capacity)", got)
	}
}

func TestRunDrivesChannels(t *testing.T) {
	procs := trendProcs()
	j, err := NewJoin(Config{CacheSize: 6, Procs: procs, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4)
	n := 300
	r := procs[0].Generate(rng.Split(), n)
	s := procs[1].Generate(rng.Split(), n)

	in := make(chan Input)
	out := make(chan Pair, 16)
	errCh := make(chan error, 1)
	go func() { errCh <- j.Run(context.Background(), in, out) }()
	go func() {
		for i := 0; i < n; i++ {
			in <- Input{R: Tuple{Key: r[i]}, S: Tuple{Key: s[i]}}
		}
		close(in)
	}()
	count := 0
	for range out {
		count++
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("channel run produced no pairs")
	}
	if count != j.Metrics().Pairs {
		t.Fatalf("channel count %d != metrics %d", count, j.Metrics().Pairs)
	}
}

func TestRunHonorsContextCancellation(t *testing.T) {
	j, _ := NewJoin(Config{CacheSize: 2})
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan Input)
	out := make(chan Pair) // unbuffered and never read: Run must still exit
	errCh := make(chan error, 1)
	go func() { errCh <- j.Run(ctx, in, out) }()
	in <- Input{R: Tuple{Key: 1}, S: Tuple{Key: 1}} // produces a pair, blocks on out
	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not exit after cancellation")
	}
}

func TestDefaultHEEBOutperformsRandThroughOperator(t *testing.T) {
	procs := trendProcs()
	rng := stats.NewRNG(10)
	n := 1500
	r := procs[0].Generate(rng.Split(), n)
	s := procs[1].Generate(rng.Split(), n)
	run := func(cfg Config) int {
		j, err := NewJoin(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			j.Step(Tuple{Key: r[i]}, Tuple{Key: s[i]})
		}
		return j.Metrics().Pairs
	}
	heeb := run(Config{CacheSize: 8, Procs: procs, Seed: 1})
	rand := run(Config{CacheSize: 8, Seed: 1}) // no models → RAND
	if heeb <= rand {
		t.Fatalf("default HEEB %d <= RAND %d", heeb, rand)
	}
}

// Property: across random configurations (window, band, cache size), the
// indexed operator agrees pair-for-pair with the reference oracle, and —
// when no window is configured, so eager pruning cannot change the cache
// population — its policy-dependent pair count equals the batch simulator's.
// (Under a window the operator intentionally diverges from the simulator:
// pruning frees slots the simulator leaves padded with expired tuples.)
func TestQuickOperatorSimulatorEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 50 + rng.IntN(250)
		k := 1 + rng.IntN(6)
		window := 0
		if rng.IntN(2) == 1 {
			window = 2 + rng.IntN(10)
		}
		band := rng.IntN(3)
		procs := trendProcs()
		r := procs[0].Generate(stats.NewRNG(seed+1), n)
		s := procs[1].Generate(stats.NewRNG(seed+2), n)
		mk := func() join.Policy {
			return policy.NewHEEB(policy.HEEBOptions{Mode: policy.HEEBDirect, LifetimeEstimate: 3})
		}
		op, err := NewJoin(Config{CacheSize: k, Window: window, Band: band, Procs: procs, Policy: mk()})
		if err != nil {
			return false
		}
		ref, err := NewReferenceJoin(Config{CacheSize: k, Window: window, Band: band, Procs: procs, Policy: mk()})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			po := op.Step(Tuple{Key: r[i]}, Tuple{Key: s[i]})
			pr := ref.Step(Tuple{Key: r[i]}, Tuple{Key: s[i]})
			if !pairsEqual(po, pr) {
				return false
			}
		}
		if op.Metrics() != ref.Metrics() {
			return false
		}
		if window == 0 {
			sim := join.Run(r, s, mk(), join.Config{
				CacheSize: k, Warmup: 0, Window: window, Band: band, Procs: procs,
			}, stats.NewRNG(1))
			m := op.Metrics()
			return m.Pairs-m.SameTimePairs == sim.TotalJoins
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
