package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"stochstream/internal/checkpoint"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/stats"
)

// ckptConfigs is the configuration grid the checkpoint differential tests
// run: the default model-free policy (RAND, private RNG state), a history-
// derived policy (PROB), HEEB on a band join (adaptive tracker + incremental
// score state), and the full degradation ladder on a sliding window.
func ckptConfigs() []struct {
	name string
	mk   func() Config
} {
	return []struct {
		name string
		mk   func() Config
	}{
		{"equi-rand", func() Config {
			return Config{CacheSize: 8, Seed: 11}
		}},
		{"equi-prob", func() Config {
			return Config{CacheSize: 8, Seed: 11, Policy: &policy.Prob{}}
		}},
		{"band-heeb", func() Config {
			return Config{CacheSize: 8, Band: 2, Seed: 11, Procs: trendProcs(), Policy: policy.NewHEEB(heebOpts())}
		}},
		{"window-ladder", func() Config {
			return Config{CacheSize: 6, Window: 10, Seed: 11, Procs: trendProcs(),
				Policy: policy.NewDefaultLadder(4, 0, heebOpts())}
		}},
	}
}

// ckptTrace generates a deterministic stream trace with payloads attached.
func ckptTrace(n int) (r, s []Tuple) {
	procs := trendProcs()
	rng := stats.NewRNG(909)
	rv := procs[0].Generate(rng.Split(), n)
	sv := procs[1].Generate(rng.Split(), n)
	r = make([]Tuple, n)
	s = make([]Tuple, n)
	for i := 0; i < n; i++ {
		r[i] = Tuple{Key: rv[i], Payload: i}
		s[i] = Tuple{Key: sv[i], Payload: -i - 1}
	}
	return r, s
}

func copyPairs(ps []Pair) []Pair { return append([]Pair(nil), ps...) }

// The tentpole differential test: an operator checkpointed at an arbitrary
// step and restored into a freshly built operator must replay the remaining
// trace byte-identically to the uninterrupted run — same pairs (payloads
// included), same cache snapshots, same metrics. Per configuration class
// the cut point varies so the checkpoint lands on both calm and mid-churn
// states.
func TestCheckpointRestoreReplayIdentical(t *testing.T) {
	const n = 600
	r, s := ckptTrace(n)
	for _, tc := range ckptConfigs() {
		for _, cut := range []int{1, n / 3, n / 2} {
			t.Run(fmt.Sprintf("%s/cut%d", tc.name, cut), func(t *testing.T) {
				// Uninterrupted baseline.
				base, err := NewJoin(tc.mk())
				if err != nil {
					t.Fatal(err)
				}
				basePairs := make([][]Pair, n)
				for i := 0; i < n; i++ {
					basePairs[i] = copyPairs(base.Step(r[i], s[i]))
				}

				// Interrupted run: step to the cut, checkpoint.
				orig, err := NewJoin(tc.mk())
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < cut; i++ {
					orig.Step(r[i], s[i])
				}
				var buf bytes.Buffer
				if err := orig.Checkpoint(&buf); err != nil {
					t.Fatalf("Checkpoint at %d: %v", cut, err)
				}

				// Restore into a fresh operator and replay the tail.
				restored, err := NewJoin(tc.mk())
				if err != nil {
					t.Fatal(err)
				}
				if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
					t.Fatalf("Restore at %d: %v", cut, err)
				}
				if !snapshotsEqual(restored.Snapshot(), orig.Snapshot()) {
					t.Fatalf("cut %d: restored cache snapshot differs:\n  restored %v\n  original %v",
						cut, restored.Snapshot(), orig.Snapshot())
				}
				if rm, om := restored.Metrics(), orig.Metrics(); rm != om {
					t.Fatalf("cut %d: restored metrics differ:\n  restored %+v\n  original %+v", cut, rm, om)
				}
				if err := restored.CheckInvariants(); err != nil {
					t.Fatalf("cut %d: restored operator invariants: %v", cut, err)
				}
				for i := cut; i < n; i++ {
					got := restored.Step(r[i], s[i])
					if !pairsEqual(got, basePairs[i]) {
						t.Fatalf("cut %d: step %d pairs diverge after restore:\n  restored %v\n  baseline %v",
							cut, i, got, basePairs[i])
					}
				}
				if rm, bm := restored.Metrics(), base.Metrics(); rm != bm {
					t.Fatalf("cut %d: final metrics diverge:\n  restored %+v\n  baseline %+v", cut, rm, bm)
				}
				if !snapshotsEqual(restored.Snapshot(), base.Snapshot()) {
					t.Fatalf("cut %d: final caches diverge", cut)
				}
			})
		}
	}
}

// A restored operator must also track the reference oracle — reusing the
// hot-path differential harness's strongest claim across the interruption.
func TestCheckpointRestoreTracksReference(t *testing.T) {
	const n, cut = 800, 311
	r, s := ckptTrace(n)
	mkCfg := func() Config {
		return Config{CacheSize: 10, Window: 14, Band: 1, Seed: 3, Procs: trendProcs(), Policy: policy.NewHEEB(heebOpts())}
	}
	ref, err := NewReferenceJoin(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewJoin(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i := 0; i < cut; i++ {
		ref.Step(r[i], s[i])
		op.Step(r[i], s[i])
	}
	if err := op.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	op, err = NewJoin(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	for i := cut; i < n; i++ {
		pr := ref.Step(r[i], s[i])
		po := op.Step(r[i], s[i])
		if !pairsEqual(po, pr) {
			t.Fatalf("step %d: restored operator diverges from reference:\n  op  %v\n  ref %v", i, po, pr)
		}
	}
}

// steppedOperator builds an operator, advances it, and returns it with its
// checkpoint bytes — shared setup for the failure-path tests.
func steppedOperator(t *testing.T, steps int) (*Join, []byte) {
	t.Helper()
	r, s := ckptTrace(steps)
	j, err := NewJoin(Config{CacheSize: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		j.Step(r[i], s[i])
	}
	var buf bytes.Buffer
	if err := j.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return j, buf.Bytes()
}

// requireUntouched verifies a failed restore left the operator exactly as it
// was: same snapshot and metrics, and stepping it onward still matches a
// control operator that never saw the failed restore.
func requireUntouched(t *testing.T, j *Join, ckpt []byte) {
	t.Helper()
	control, err := NewJoin(Config{CacheSize: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := control.Restore(bytes.NewReader(ckpt)); err != nil {
		t.Fatalf("control restore: %v", err)
	}
	if !snapshotsEqual(j.Snapshot(), control.Snapshot()) {
		t.Fatalf("failed restore mutated the cache:\n  got  %v\n  want %v", j.Snapshot(), control.Snapshot())
	}
	if jm, cm := j.Metrics(), control.Metrics(); jm != cm {
		t.Fatalf("failed restore mutated metrics:\n  got  %+v\n  want %+v", jm, cm)
	}
	r, s := ckptTrace(140)
	for i := 100; i < 140; i++ {
		if !pairsEqual(j.Step(r[i], s[i]), control.Step(r[i], s[i])) {
			t.Fatalf("operator diverges from control at step %d after failed restore", i)
		}
	}
}

// Version skew and corruption must yield the typed envelope errors and leave
// the operator untouched — no partial restore.
func TestRestoreRejectsSkewAndCorruption(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"future-version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			binary.LittleEndian.PutUint32(c[4:8], checkpoint.Version+7)
			return c
		}, checkpoint.ErrUnsupportedVersion},
		{"bad-magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = '?'
			return c
		}, checkpoint.ErrBadMagic},
		{"corrupt-payload", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[20] ^= 0x55
			return c
		}, checkpoint.ErrChecksum},
		{"truncated", func(b []byte) []byte {
			return append([]byte(nil), b[:len(b)/2]...)
		}, checkpoint.ErrTruncated},
	} {
		t.Run(tc.name, func(t *testing.T) {
			j, ckpt := steppedOperator(t, 100)
			err := j.Restore(bytes.NewReader(tc.mutate(ckpt)))
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
			requireUntouched(t, j, ckpt)
		})
	}
}

// A checkpoint only restores into an identically configured operator.
func TestRestoreRejectsConfigMismatch(t *testing.T) {
	_, ckpt := steppedOperator(t, 100)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"cache-size", Config{CacheSize: 16, Seed: 11}},
		{"window", Config{CacheSize: 8, Window: 4, Seed: 11}},
		{"band", Config{CacheSize: 8, Band: 1, Seed: 11}},
		{"seed", Config{CacheSize: 8, Seed: 12}},
		{"policy", Config{CacheSize: 8, Seed: 11, Policy: &policy.Prob{}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			j, err := NewJoin(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Restore(bytes.NewReader(ckpt)); !errors.Is(err, ErrConfigMismatch) {
				t.Fatalf("got %v, want ErrConfigMismatch", err)
			}
		})
	}
}

// A payload that passes the checksum but encodes impossible operator state
// (here: a cache entry with an out-of-range ID) must still be rejected.
func TestRestoreRejectsInconsistentState(t *testing.T) {
	j, err := NewJoin(Config{CacheSize: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	j.Step(Tuple{Key: 1}, Tuple{Key: 2})
	var buf bytes.Buffer
	if err := j.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Forge an internally inconsistent checkpoint through the proper envelope
	// so only the semantic validation can catch it.
	j.nextID = 0 // makes every cached ID out of range on the wire
	var forged bytes.Buffer
	if err := j.Checkpoint(&forged); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewJoin(Config{CacheSize: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(bytes.NewReader(forged.Bytes())); err == nil {
		t.Fatal("restore accepted a checkpoint with IDs outside [0, nextID)")
	}
	if got := len(fresh.Snapshot()); got != 0 {
		t.Fatalf("failed restore left %d entries in a fresh operator", got)
	}
}

// Checkpointing must not disturb the operator: a run with a mid-flight
// checkpoint produces exactly the pairs of a run without one.
func TestCheckpointIsSideEffectFree(t *testing.T) {
	const n = 300
	r, s := ckptTrace(n)
	mk := func() Config { return Config{CacheSize: 8, Seed: 11, Procs: trendProcs()} }
	a, err := NewJoin(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewJoin(mk())
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	for i := 0; i < n; i++ {
		pa := a.Step(r[i], s[i])
		if i%37 == 0 {
			sink.Reset()
			if err := b.Checkpoint(&sink); err != nil {
				t.Fatal(err)
			}
		}
		pb := b.Step(r[i], s[i])
		if !pairsEqual(pa, pb) {
			t.Fatalf("step %d: checkpointing perturbed the run", i)
		}
	}
}

// The simulator-facing policies keep their StateSnapshotter contract: a
// ladder snapshot restores only into an identically-shaped ladder.
func TestLadderSnapshotShapeMismatch(t *testing.T) {
	lad := policy.NewDefaultLadder(4, 0, heebOpts())
	cfg := join.Config{CacheSize: 4, Procs: trendProcs()}
	lad.Reset(cfg, stats.NewRNG(1))
	snap, err := lad.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	other := &policy.Ladder{Rungs: []join.Policy{policy.NewHEEB(heebOpts())}}
	other.Reset(cfg, stats.NewRNG(1))
	if err := other.RestoreState(snap); err == nil {
		t.Fatal("ladder restored a snapshot from a differently-shaped ladder")
	}
}
