package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"stochstream/internal/checkpoint"
	"stochstream/internal/flightrec"
	"stochstream/internal/join"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// The checkpoint payload is a gob-encoded checkpointWire inside the
// internal/checkpoint envelope (magic + version + CRC32). Everything the
// operator needs to replay exactly as an uninterrupted run is captured:
// the configuration fingerprint (so a restore into a differently configured
// operator is rejected), the clock and ID counter, the metrics, the cache
// with payloads, both observed histories, the state RNG, and the policy's
// private decision state when the policy implements join.StateSnapshotter.
// Indexes are not serialized — they are a pure function of the cache and are
// rebuilt on restore.
//
// Payloads are stored as interface values, so gob requires their concrete
// types to be registered; the common scalar types are registered here and
// callers with richer payloads register them with encoding/gob themselves.
type checkpointWire struct {
	CacheSize, Window, Band int
	Seed                    uint64
	PolicyName              string
	ProcSig                 string

	Time    int
	NextID  int
	Metrics Metrics
	Cache   []cacheEntryWire
	Hists   [2][]int

	StateRNG       []byte
	HasPolicyState bool
	PolicyState    []byte
}

type cacheEntryWire struct {
	Tuple   join.Tuple
	Payload interface{}
}

func init() {
	// Interface-typed payloads need registered concrete types; cover the
	// scalars so the common cases work out of the box. Identical
	// re-registration elsewhere is a no-op.
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register(float64(0))
	gob.Register(string(""))
	gob.Register(bool(false))
	gob.Register([]byte(nil))
}

// fingerprint returns the configuration identity a checkpoint is bound to.
// The process pair is part of it: two operators with different arrival
// processes share no replayable state even when the cache geometry, seed
// and policy all match, so a checkpoint must not cross that boundary.
func (j *Join) fingerprint() (int, int, int, uint64, string, string) {
	procSig := fmt.Sprintf("%T/%T", j.cfg.Procs[0], j.cfg.Procs[1])
	return j.cfg.CacheSize, j.cfg.Window, j.cfg.Band, j.cfg.Seed, unwrapPolicy(j.policy).Name(), procSig
}

// Checkpoint serializes the operator's full state to w. The operator is
// unchanged and can keep stepping; a later Restore into an operator built
// with the same Config resumes as if the run had never stopped.
//
// Policies that hold private decision state (RNG streams, adaptive
// trackers — see join.StateSnapshotter) are captured too; policies whose
// state re-derives from the histories need nothing. A policy with
// unsnapshottable private state will replay differently after restore —
// implement StateSnapshotter for it.
func (j *Join) Checkpoint(w io.Writer) error {
	if j.rec == nil {
		return j.writeCheckpoint(w)
	}
	sp := j.rec.Begin(flightrec.PhaseCheckpoint)
	err := j.writeCheckpoint(w)
	if err != nil {
		j.rec.Fail(sp, len(j.cache), 0, "error")
		return err
	}
	j.rec.End(sp, len(j.cache), 0)
	return nil
}

func (j *Join) writeCheckpoint(w io.Writer) error {
	size, window, band, seed, polName, procSig := j.fingerprint()
	wire := checkpointWire{
		CacheSize:  size,
		Window:     window,
		Band:       band,
		Seed:       seed,
		PolicyName: polName,
		ProcSig:    procSig,
		Time:       j.time,
		NextID:     j.nextID,
		Metrics:    j.m,
		Cache:      make([]cacheEntryWire, len(j.cache)),
		Hists: [2][]int{
			append([]int(nil), j.hists[0].Values()...),
			append([]int(nil), j.hists[1].Values()...),
		},
	}
	for i, e := range j.cache {
		wire.Cache[i] = cacheEntryWire{Tuple: e.t, Payload: e.payload}
	}
	rngBytes, err := j.state.RNG.MarshalBinary()
	if err != nil {
		return fmt.Errorf("engine: serializing state RNG: %w", err)
	}
	wire.StateRNG = rngBytes
	if s, ok := unwrapPolicy(j.policy).(join.StateSnapshotter); ok {
		ps, err := s.SnapshotState()
		if err != nil {
			return fmt.Errorf("engine: snapshotting policy %s: %w", polName, err)
		}
		wire.HasPolicyState = true
		wire.PolicyState = ps
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return fmt.Errorf("engine: encoding checkpoint: %w", err)
	}
	return checkpoint.Write(w, buf.Bytes())
}

// Restore replaces the operator's state with a checkpoint taken from an
// operator built with the same Config. Envelope failures (bad magic,
// unsupported version, checksum mismatch — see internal/checkpoint), decode
// failures and configuration mismatches are all detected before any state is
// touched: on such errors the operator continues exactly as it was. Only a
// failing policy-state restore (possible with a custom StateSnapshotter) can
// leave the policy partially restored; the engine's own state is still
// committed atomically after it.
func (j *Join) Restore(r io.Reader) error {
	payload, err := checkpoint.Read(r)
	if err != nil {
		return err
	}
	var wire checkpointWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wire); err != nil {
		return fmt.Errorf("engine: decoding checkpoint payload: %w", err)
	}
	size, window, band, seed, polName, procSig := j.fingerprint()
	if wire.CacheSize != size || wire.Window != window || wire.Band != band {
		return fmt.Errorf("%w: checkpoint (cache=%d, window=%d, band=%d), operator (cache=%d, window=%d, band=%d)",
			ErrConfigMismatch, wire.CacheSize, wire.Window, wire.Band, size, window, band)
	}
	if wire.Seed != seed {
		return fmt.Errorf("%w: checkpoint seed %d, operator seed %d", ErrConfigMismatch, wire.Seed, seed)
	}
	if wire.PolicyName != polName {
		return fmt.Errorf("%w: checkpoint policy %q, operator policy %q", ErrConfigMismatch, wire.PolicyName, polName)
	}
	if wire.ProcSig != procSig {
		return fmt.Errorf("%w: checkpoint processes %q, operator processes %q", ErrConfigMismatch, wire.ProcSig, procSig)
	}
	if err := validateWire(&wire); err != nil {
		return err
	}
	rng := stats.NewRNG(0)
	if err := rng.UnmarshalBinary(wire.StateRNG); err != nil {
		return fmt.Errorf("engine: restoring state RNG: %w", err)
	}
	// Everything fallible that can run without mutating is done; restore the
	// policy first (the one mutation that can still fail), then commit.
	if wire.HasPolicyState {
		s, ok := unwrapPolicy(j.policy).(join.StateSnapshotter)
		if !ok {
			return fmt.Errorf("%w: checkpoint carries state for policy %q, which cannot restore it",
				ErrConfigMismatch, wire.PolicyName)
		}
		if err := s.RestoreState(wire.PolicyState); err != nil {
			return fmt.Errorf("engine: restoring policy %s: %w", wire.PolicyName, err)
		}
	}
	j.time = wire.Time
	j.nextID = wire.NextID
	j.m = wire.Metrics
	j.hists = [2]*process.History{
		process.NewHistory(wire.Hists[0]...),
		process.NewHistory(wire.Hists[1]...),
	}
	j.state.Hists = j.hists
	j.state.Time = wire.Time - 1
	j.state.RNG = rng
	j.cache = j.cache[:0]
	if j.cfg.Band == 0 {
		j.equi = [2]map[int][]int{{}, {}}
		j.ord = [2][]valID{}
	} else {
		j.equi = [2]map[int][]int{}
		j.ord = [2][]valID{nil, nil}
	}
	for _, e := range wire.Cache {
		j.admit(entry{t: e.Tuple, payload: e.Payload})
	}
	return nil
}

// validateWire sanity-checks decoded checkpoint state before it is
// committed, so a payload that passed the checksum but carries impossible
// state (a hand-edited file with a recomputed CRC) still cannot corrupt the
// operator.
func validateWire(wire *checkpointWire) error {
	bad := func(format string, args ...interface{}) error {
		return fmt.Errorf("engine: invalid checkpoint state: "+format, args...)
	}
	if wire.Time < 0 || wire.NextID < 0 {
		return bad("time %d, next ID %d", wire.Time, wire.NextID)
	}
	if len(wire.Hists[0]) != wire.Time || len(wire.Hists[1]) != wire.Time {
		return bad("histories of %d and %d observations for %d steps",
			len(wire.Hists[0]), len(wire.Hists[1]), wire.Time)
	}
	if len(wire.Cache) > wire.CacheSize {
		return bad("%d cached entries for budget %d", len(wire.Cache), wire.CacheSize)
	}
	for i, e := range wire.Cache {
		if e.Tuple.ID < 0 || e.Tuple.ID >= wire.NextID {
			return bad("entry %d has ID %d outside [0, %d)", i, e.Tuple.ID, wire.NextID)
		}
		if e.Tuple.Arrived < 0 || e.Tuple.Arrived >= wire.Time {
			return bad("entry %d arrived at %d, checkpoint time is %d", i, e.Tuple.Arrived, wire.Time)
		}
		if i > 0 && e.Tuple.ID <= wire.Cache[i-1].Tuple.ID {
			return bad("cache IDs not strictly ascending at %d", i)
		}
		if i > 0 && e.Tuple.Arrived < wire.Cache[i-1].Tuple.Arrived {
			return bad("arrival times not nondecreasing at %d", i)
		}
		if int(e.Tuple.Stream) != 0 && int(e.Tuple.Stream) != 1 {
			return bad("entry %d has stream %d", i, e.Tuple.Stream)
		}
	}
	return nil
}
