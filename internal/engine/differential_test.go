package engine

import (
	"testing"

	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/stats"
)

// pairsEqual compares two emitted slices structurally; payloads in the
// harness are nil or comparable, so struct equality is exact.
func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func snapshotsEqual(a, b []join.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runDifferential drives the indexed operator and the reference oracle over
// the same trace with independently-constructed but identically-seeded
// policies, requiring byte-identical pair streams, identical cache contents
// (hence identical eviction choices), and identical counters at every step.
func runDifferential(t *testing.T, name string, cfgOp, cfgRef Config, n int, traceSeed uint64) {
	t.Helper()
	procs := trendProcs()
	rng := stats.NewRNG(traceSeed)
	r := procs[0].Generate(rng.Split(), n)
	s := procs[1].Generate(rng.Split(), n)

	op, err := NewJoin(cfgOp)
	if err != nil {
		t.Fatalf("%s: NewJoin: %v", name, err)
	}
	ref, err := NewReferenceJoin(cfgRef)
	if err != nil {
		t.Fatalf("%s: NewReferenceJoin: %v", name, err)
	}
	for i := 0; i < n; i++ {
		po := op.Step(Tuple{Key: r[i]}, Tuple{Key: s[i]})
		pr := ref.Step(Tuple{Key: r[i]}, Tuple{Key: s[i]})
		if !pairsEqual(po, pr) {
			t.Fatalf("%s: step %d pairs diverge:\n  op  %v\n  ref %v", name, i, po, pr)
		}
		// Snapshot equality implies the two made identical eviction choices.
		if i%251 == 0 || i == n-1 {
			if !snapshotsEqual(op.Snapshot(), ref.Snapshot()) {
				t.Fatalf("%s: step %d caches diverge:\n  op  %v\n  ref %v", name, i, op.Snapshot(), ref.Snapshot())
			}
		}
	}
	mo, mr := op.Metrics(), ref.Metrics()
	if mo != mr {
		t.Fatalf("%s: metrics diverge:\n  op  %+v\n  ref %+v", name, mo, mr)
	}
}

func heebOpts() policy.HEEBOptions {
	return policy.HEEBOptions{Mode: policy.HEEBDirect, LifetimeEstimate: 4}
}

// The gate for the whole hot-path overhaul: ≥10k-step random traces per
// configuration class, optimized operator vs reference oracle, both running
// the same policy construction.
func TestDifferentialHEEB10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-step differential traces are not short")
	}
	const n = 10000
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"equi", Config{CacheSize: 16}},
		{"band", Config{CacheSize: 16, Band: 2}},
		{"window", Config{CacheSize: 16, Window: 12}},
		{"band-window", Config{CacheSize: 8, Band: 1, Window: 9}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfgOp, cfgRef := tc.cfg, tc.cfg
			cfgOp.Procs, cfgRef.Procs = trendProcs(), trendProcs()
			cfgOp.Policy = policy.NewHEEB(heebOpts())
			cfgRef.Policy = policy.NewHEEB(heebOpts())
			cfgOp.Seed, cfgRef.Seed = 7, 7
			runDifferential(t, tc.name, cfgOp, cfgRef, n, 101)
		})
	}
}

// The strongest end-to-end equivalence claim: the optimized operator running
// memoized + parallel HEEB scoring against the oracle running the seed
// scoring path (NoMemo, serial). Any float drift in the forecast cache, the
// tabulated L, or the parallel merge would surface here.
func TestDifferentialParallelMemoVsSeedScoring(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-step differential traces are not short")
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"equi", Config{CacheSize: 16}},
		{"band-window", Config{CacheSize: 12, Band: 2, Window: 15}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfgOp, cfgRef := tc.cfg, tc.cfg
			cfgOp.Procs, cfgRef.Procs = trendProcs(), trendProcs()
			opOpts := heebOpts()
			opOpts.Parallel = true
			opOpts.ParallelThreshold = 1
			refOpts := heebOpts()
			refOpts.NoMemo = true
			cfgOp.Policy = policy.NewHEEB(opOpts)
			cfgRef.Policy = policy.NewHEEB(refOpts)
			cfgOp.Seed, cfgRef.Seed = 3, 3
			runDifferential(t, tc.name, cfgOp, cfgRef, 10000, 77)
		})
	}
}

// Model-free policies across the same configuration grid; cheap, so every
// config runs the full 10k steps.
func TestDifferentialModelFreePolicies10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-step differential traces are not short")
	}
	mk := map[string]func() join.Policy{
		"rand": func() join.Policy { return &policy.Rand{} },
		"prob": func() join.Policy { return &policy.Prob{} },
	}
	for polName, mkPol := range mk {
		for _, tc := range []struct {
			name string
			cfg  Config
		}{
			{"equi", Config{CacheSize: 24}},
			{"band", Config{CacheSize: 24, Band: 3}},
			{"window", Config{CacheSize: 24, Window: 20}},
		} {
			t.Run(polName+"/"+tc.name, func(t *testing.T) {
				cfgOp, cfgRef := tc.cfg, tc.cfg
				cfgOp.Policy, cfgRef.Policy = mkPol(), mkPol()
				cfgOp.Seed, cfgRef.Seed = 13, 13
				runDifferential(t, tc.name, cfgOp, cfgRef, 10000, 55)
			})
		}
	}
}

// Expired tuples must be pruned eagerly: a tuple older than the window frees
// its slot before the next replacement decision, so a full-but-expired cache
// admits both arrivals without consulting the policy. This is the regression
// test for the seed's leak, where expired entries sat in the cache
// indefinitely, soaking up budget and forcing evictions of live tuples.
func TestWindowExpiredTuplesArePruned(t *testing.T) {
	j, err := NewJoin(Config{CacheSize: 4, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	// t=0, t=1: fill the cache with four tuples.
	j.Step(Tuple{Key: 1}, Tuple{Key: 2})
	j.Step(Tuple{Key: 3}, Tuple{Key: 4})
	if m := j.Metrics(); m.CacheLen != 4 || m.Evictions != 0 || m.Expired != 0 {
		t.Fatalf("after fill: %+v", m)
	}
	// t=2: the t=0 pair is still in-window (age 2); cache over budget, so the
	// policy must evict.
	j.Step(Tuple{Key: 5}, Tuple{Key: 6})
	if m := j.Metrics(); m.CacheLen != 4 || m.Evictions != 2 || m.Expired != 0 {
		t.Fatalf("after t=2: %+v", m)
	}
	// Walk far past the window: every cached tuple expires, so admissions
	// proceed with NO further policy evictions.
	evBefore := j.Metrics().Evictions
	j.time += 10 // jump the clock past every arrival's window
	j.state.Time = j.time
	j.Step(Tuple{Key: 7}, Tuple{Key: 8})
	m := j.Metrics()
	if m.Expired != 4 {
		t.Fatalf("expired = %d, want 4 (whole cache aged out): %+v", m.Expired, m)
	}
	if m.Evictions != evBefore {
		t.Fatalf("pruning must free slots without policy evictions: %+v", m)
	}
	if m.CacheLen != 2 {
		t.Fatalf("cache should hold exactly the two fresh arrivals: %+v", m)
	}
	for _, tp := range j.Snapshot() {
		if j.time-1-tp.Arrived > j.cfg.Window {
			t.Fatalf("expired tuple %+v survived pruning", tp)
		}
	}
}

// The seed treated expired entries as dead weight: they were skipped when
// matching but still occupied cache slots, forcing live tuples out. With
// pruning, the freed budget must never produce FEWER results than the seed
// behavior on a window workload.
func TestPruningNeverLosesResults(t *testing.T) {
	procs := trendProcs()
	rng := stats.NewRNG(31)
	n := 2000
	r := procs[0].Generate(rng.Split(), n)
	s := procs[1].Generate(rng.Split(), n)

	run := func(window int) int {
		j, err := NewJoin(Config{CacheSize: 6, Window: window, Procs: procs, Policy: policy.NewHEEB(heebOpts()), Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := 0; i < n; i++ {
			total += len(j.Step(Tuple{Key: r[i]}, Tuple{Key: s[i]}))
		}
		return total
	}
	// The simulator keeps seed semantics (expired tuples pad the cache);
	// compare against it on the same trace.
	sim := joinRunSeedSemantics(t, r, s, 6, 8)
	got := run(8)
	if got-sameTimeCount(t, r, s, 0) < sim {
		t.Fatalf("pruned operator produced %d policy-dependent pairs, seed semantics %d", got, sim)
	}
}

func joinRunSeedSemantics(t *testing.T, r, s []int, cacheSize, window int) int {
	t.Helper()
	procs := trendProcs()
	res := join.Run(r, s, policy.NewHEEB(heebOpts()), join.Config{
		CacheSize: cacheSize, Window: window, Warmup: 0, Procs: procs,
	}, stats.NewRNG(6))
	return res.TotalJoins
}

func sameTimeCount(t *testing.T, r, s []int, band int) int {
	t.Helper()
	c := 0
	for i := range r {
		if keysMatch(r[i], s[i], band) {
			c++
		}
	}
	return c
}
