package engine

import (
	"testing"

	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// FuzzStepEquivalence fuzzes the indexed operator against the reference
// oracle over short random traces. cfgBits packs the configuration so every
// corpus entry is two uint64s:
//
//	bits 0..4   cache size − 1   (1..32)
//	bits 5..9   window           (0..31; 0 disables)
//	bits 10..11 band             (0..3)
//	bits 12..13 policy           (0 HEEB, 1 PROB, 2 RAND, 3 HEEB+parallel)
//	bit  14     key source       (0 model trace, 1 raw small-domain keys)
//
// Raw small-domain keys maximize match density and occasionally inject
// NoValue arrivals, exercising the index's refusal to post them.
func FuzzStepEquivalence(f *testing.F) {
	f.Add(uint64(1), uint64(0))
	f.Add(uint64(2), uint64(1<<14|3|7<<5))              // cache 4, window 7, raw keys
	f.Add(uint64(3), uint64(15|2<<10))                  // cache 16, band 2
	f.Add(uint64(4), uint64(7|12<<5|1<<10))             // cache 8, window 12, band 1
	f.Add(uint64(5), uint64(31|1<<12))                  // cache 32, PROB
	f.Add(uint64(6), uint64(9|2<<12|1<<14))             // cache 10, RAND, raw keys
	f.Add(uint64(7), uint64(15|3<<12))                  // cache 16, HEEB parallel
	f.Add(uint64(8), uint64(3|20<<5|3<<10|1<<12|1<<14)) // kitchen sink
	f.Fuzz(func(t *testing.T, seed, cfgBits uint64) {
		cacheSize := int(cfgBits&31) + 1
		window := int(cfgBits >> 5 & 31)
		band := int(cfgBits >> 10 & 3)
		polSel := int(cfgBits >> 12 & 3)
		rawKeys := cfgBits>>14&1 == 1
		const n = 250

		procs := trendProcs()
		var r, s []int
		if rawKeys {
			rng := stats.NewRNG(seed)
			r, s = make([]int, n), make([]int, n)
			for i := 0; i < n; i++ {
				r[i], s[i] = rng.IntN(24), rng.IntN(24)
				if rng.IntN(16) == 0 {
					r[i] = process.NoValue
				}
				if rng.IntN(16) == 0 {
					s[i] = process.NoValue
				}
			}
		} else {
			rng := stats.NewRNG(seed)
			r = procs[0].Generate(rng.Split(), n)
			s = procs[1].Generate(rng.Split(), n)
		}

		mk := func() join.Policy {
			switch polSel {
			case 1:
				return &policy.Prob{}
			case 2:
				return &policy.Rand{}
			case 3:
				return policy.NewHEEB(policy.HEEBOptions{
					Mode: policy.HEEBDirect, LifetimeEstimate: 3,
					Parallel: true, ParallelThreshold: 1,
				})
			default:
				return policy.NewHEEB(policy.HEEBOptions{Mode: policy.HEEBDirect, LifetimeEstimate: 3})
			}
		}
		cfg := Config{CacheSize: cacheSize, Window: window, Band: band, Seed: seed}
		if polSel == 0 || polSel == 3 {
			cfg.Procs = procs
		}
		cfgOp, cfgRef := cfg, cfg
		cfgOp.Policy, cfgRef.Policy = mk(), mk()
		op, err := NewJoin(cfgOp)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewReferenceJoin(cfgRef)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			po := op.Step(Tuple{Key: r[i]}, Tuple{Key: s[i]})
			pr := ref.Step(Tuple{Key: r[i]}, Tuple{Key: s[i]})
			if !pairsEqual(po, pr) {
				t.Fatalf("step %d pairs diverge (cache %d window %d band %d pol %d raw %v):\n  op  %v\n  ref %v",
					i, cacheSize, window, band, polSel, rawKeys, po, pr)
			}
		}
		if !snapshotsEqual(op.Snapshot(), ref.Snapshot()) {
			t.Fatalf("final caches diverge:\n  op  %v\n  ref %v", op.Snapshot(), ref.Snapshot())
		}
		if op.Metrics() != ref.Metrics() {
			t.Fatalf("metrics diverge:\n  op  %+v\n  ref %+v", op.Metrics(), ref.Metrics())
		}
	})
}
