package engine

import (
	"errors"

	"stochstream/internal/policy"
)

// Error taxonomy of the fault-tolerance layer. Boundary failures come back
// as values wrapping one of these sentinels (test with errors.Is); internal
// invariant violations — a policy returning a malformed eviction set, an
// index out of sync — remain panics, because they are programming errors the
// operator cannot meaningfully continue past (CheckInvariants exists to
// surface them in tests and chaos harnesses instead).
var (
	// ErrBadTuple reports an arrival whose key lies outside the supported
	// domain; StepChecked rejects the step without mutating any state.
	ErrBadTuple = errors.New("engine: bad tuple")
	// ErrStepFailed reports that a step aborted mid-flight (a policy panic
	// caught by StepChecked). The operator's state may be inconsistent; the
	// caller should Restore from a checkpoint or rebuild the operator.
	ErrStepFailed = errors.New("engine: step failed")
	// ErrConfigMismatch reports a checkpoint that was taken under a different
	// operator configuration than the one restoring it.
	ErrConfigMismatch = errors.New("engine: checkpoint does not match operator configuration")
	// ErrInvariant is wrapped by every CheckInvariants failure.
	ErrInvariant = errors.New("engine: cache invariant violated")
)

// Re-exports of the policy-layer taxonomy, so operator embedders can match
// degradation causes without importing internal/policy. (The engine imports
// policy, not the other way around, so the sentinels must live there.)
var (
	// ErrModelDiverged: a model-driven policy produced non-finite scores.
	ErrModelDiverged = policy.ErrModelDiverged
	// ErrSolverBudget: the min-cost-flow solve exceeded its deterministic
	// iteration budget.
	ErrSolverBudget = policy.ErrSolverBudget
	// ErrSolverFailed: the solver failed outright (numerical instability,
	// disconnection, injected fault, or a panic caught from a rung).
	ErrSolverFailed = policy.ErrSolverFailed
	// ErrInvalidEviction: a rung returned a malformed eviction set.
	ErrInvalidEviction = policy.ErrInvalidEviction
)
