package engine

import (
	"sync"
	"testing"

	"stochstream/internal/stats"
	"stochstream/internal/telemetry"
)

// CacheLen must be accurate on every path: before the first step, on steps
// that admit without evicting, and at capacity.
func TestMetricsCacheLenAlwaysCurrent(t *testing.T) {
	j, err := NewJoin(Config{CacheSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Metrics().CacheLen; got != 0 {
		t.Fatalf("CacheLen before first step = %d, want 0", got)
	}
	j.Step(Tuple{Key: 1}, Tuple{Key: 2})
	if got := j.Metrics().CacheLen; got != 2 {
		t.Fatalf("CacheLen after admit-only step = %d, want 2", got)
	}
	j.Step(Tuple{Key: 3}, Tuple{Key: 4})
	j.Step(Tuple{Key: 5}, Tuple{Key: 6}) // 6 candidates > 5 slots: evicts
	if got := j.Metrics().CacheLen; got != 5 {
		t.Fatalf("CacheLen at capacity = %d, want 5", got)
	}
}

func TestEngineTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	procs := trendProcs()
	j, err := NewJoin(Config{CacheSize: 4, Procs: procs, Seed: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(8)
	n := 400
	r := procs[0].Generate(rng.Split(), n)
	s := procs[1].Generate(rng.Split(), n)
	for i := 0; i < n; i++ {
		j.Step(Tuple{Key: r[i]}, Tuple{Key: s[i]})
	}
	m := j.Metrics()
	snap := reg.Snapshot()
	if got := snap.Counters["engine_steps_total"]; got != int64(n) {
		t.Fatalf("steps counter = %d, want %d", got, n)
	}
	if got := snap.Counters["engine_pairs_total"]; got != int64(m.Pairs) {
		t.Fatalf("pairs counter = %d, metrics say %d", got, m.Pairs)
	}
	if got := snap.Counters["engine_evictions_total"]; got != int64(m.Evictions) {
		t.Fatalf("evictions counter = %d, metrics say %d", got, m.Evictions)
	}
	if got := snap.Histograms["engine_step_latency_ns"].Count; got != int64(n) {
		t.Fatalf("latency observations = %d, want %d", got, n)
	}
	// The policy was wrapped: labeled HEEB metrics and trace records exist.
	if snap.Counters[`policy_decisions_total{policy="HEEB"}`] == 0 {
		t.Fatal("policy not instrumented")
	}
	if len(snap.Trace) == 0 {
		t.Fatal("no decision-trace records")
	}
	rec := snap.Trace[len(snap.Trace)-1]
	if rec.Policy != "HEEB" || len(rec.Candidates) == 0 {
		t.Fatalf("trace record = %+v", rec)
	}
}

func TestEngineWithoutTelemetryStaysBare(t *testing.T) {
	j, err := NewJoin(Config{CacheSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if j.stepLatency != nil || j.stepCount != nil {
		t.Fatal("handles resolved without a registry")
	}
	j.Step(Tuple{Key: 1}, Tuple{Key: 1}) // record() must be a no-op, not a panic
}

// Two operators sharing one registry, stepping in parallel while a third
// goroutine snapshots — the satellite's -race coverage for concurrent
// registry use.
func TestConcurrentEnginesSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	procs := trendProcs()
	const n = 300
	mk := func(seed uint64) (*Join, []int, []int) {
		j, err := NewJoin(Config{CacheSize: 4, Procs: procs, Seed: seed, Telemetry: reg})
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(seed + 100)
		return j, procs[0].Generate(rng.Split(), n), procs[1].Generate(rng.Split(), n)
	}
	j1, r1, s1 := mk(1)
	j2, r2, s2 := mk(2)

	var wg sync.WaitGroup
	step := func(j *Join, r, s []int) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			j.Step(Tuple{Key: r[i]}, Tuple{Key: s[i]})
		}
	}
	done := make(chan struct{})
	wg.Add(2)
	go step(j1, r1, s1)
	go step(j2, r2, s2)
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				snap := reg.Snapshot()
				h := snap.Histograms["engine_step_latency_ns"]
				var sum int64
				for _, c := range h.Counts {
					sum += c
				}
				if sum != h.Count {
					panic("torn histogram snapshot")
				}
			}
		}
	}()
	wg.Wait()
	close(done)

	snap := reg.Snapshot()
	if got := snap.Counters["engine_steps_total"]; got != 2*n {
		t.Fatalf("steps counter = %d, want %d", got, 2*n)
	}
	wantPairs := int64(j1.Metrics().Pairs + j2.Metrics().Pairs)
	if got := snap.Counters["engine_pairs_total"]; got != wantPairs {
		t.Fatalf("pairs counter = %d, want %d", got, wantPairs)
	}
	if got := snap.Histograms["engine_step_latency_ns"].Count; got != 2*n {
		t.Fatalf("latency observations = %d, want %d", got, 2*n)
	}
}
