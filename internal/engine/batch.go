package engine

import (
	"fmt"

	"stochstream/internal/flightrec"
	"stochstream/internal/join"
)

// Batched ingress and live cache resizing: the amortized entry points the
// sharded runtime (internal/shardrt) drives the operator through. StepBatch
// is semantically a loop of Step calls — the per-step state machine is the
// shared stepCore, so batched and looped execution stay byte-identical — but
// it pays the cross-step overhead (clock reads, the latency-histogram
// observation, counter flushes, output-slice bookkeeping) once per batch
// instead of once per tuple.

// TuplePair is one synchronized step of arrivals for StepBatch: one tuple
// from each stream, exactly like the two Step arguments.
type TuplePair struct {
	R, S Tuple
}

// StepBatch feeds a batch of synchronized steps and returns every pair the
// batch produced, in step order (Pair.Time orders them). It is byte-identical
// to calling Step once per element; only the telemetry accounting differs:
// the step-latency histogram records one observation covering the whole
// batch, and the steps/pairs/evictions counters are flushed once at batch
// end (see docs/observability.md, "Batched steps").
//
// The returned slice is owned by the operator and valid only until the next
// Step or StepBatch call; callers that retain pairs must copy them.
func (j *Join) StepBatch(batch []TuplePair) []Pair {
	if len(batch) == 0 {
		return nil
	}
	var startNs int64
	if j.stepLatency != nil || j.rec != nil {
		startNs = j.now()
	}
	out := j.batchOut[:0]
	pairs, evictions := 0, 0
	for i := range batch {
		var p, e int
		out, p, e = j.stepCore(batch[i].R, batch[i].S, out)
		pairs += p
		evictions += e
	}
	j.batchOut = out
	j.observeStep(startNs, pairs, evictions, len(batch))
	return out
}

// Resize changes the cache budget in place, without a reconstruction. A
// larger budget takes effect on the next step; a smaller one evicts down
// immediately with the configured policy (candidates are the cached entries
// in cache order, with no arrivals appended), so the budget invariant
// len(cache) <= CacheSize — and with it CheckInvariants and the checkpoint
// fingerprint — holds as soon as Resize returns. The sharded runtime's
// budget rebalancer is the caller this exists for.
func (j *Join) Resize(newSize int) error {
	if newSize < 1 {
		return fmt.Errorf("engine: Resize(%d): cache size must be >= 1", newSize)
	}
	j.cfg.CacheSize = newSize
	j.state.Config.CacheSize = newSize
	need := len(j.cache) - newSize
	if need <= 0 {
		return nil
	}
	var sp flightrec.Active
	if j.rec != nil {
		sp = j.rec.Begin(flightrec.PhaseEvict)
	}
	j.tuples = j.tuples[:0]
	for i := range j.cache {
		j.tuples = append(j.tuples, j.cache[i].t)
	}
	evict := j.policy.Evict(j.state, j.tuples, need)
	if len(evict) != need {
		panic(fmt.Sprintf("engine: policy %s returned %d evictions, need %d", j.policy.Name(), len(evict), need))
	}
	total := len(j.tuples)
	if cap(j.drop) < total {
		j.drop = make([]bool, total)
	}
	drop := j.drop[:total]
	for _, i := range evict {
		if i < 0 || i >= total || drop[i] {
			panic(fmt.Sprintf("engine: policy %s returned invalid eviction %d", j.policy.Name(), i))
		}
		drop[i] = true
	}
	j.m.Evictions += need
	kept := j.cache[:0]
	for i := 0; i < total; i++ {
		if drop[i] {
			j.indexRemove(&j.cache[i])
			if j.rec != nil {
				j.lifeTuple(flightrec.LifeEvict, j.time, j.cache[i].t, 0)
			}
		} else {
			kept = append(kept, j.cache[i])
		}
	}
	j.cache = kept
	for _, i := range evict {
		drop[i] = false
	}
	if j.evictCount != nil {
		j.evictCount.Add(int64(need))
	}
	if j.rec != nil {
		j.rec.End(sp, need, int64(len(j.cache)))
	}
	return nil
}

// Resize is Join.Resize on the oracle, so differential tests can mirror a
// rebalanced run step for step.
func (j *ReferenceJoin) Resize(newSize int) error {
	if newSize < 1 {
		return fmt.Errorf("engine: Resize(%d): cache size must be >= 1", newSize)
	}
	j.cfg.CacheSize = newSize
	j.state.Config.CacheSize = newSize
	need := len(j.cache) - newSize
	if need <= 0 {
		return nil
	}
	tuples := make([]join.Tuple, len(j.cache))
	for i, c := range j.cache {
		tuples[i] = c.t
	}
	evict := j.policy.Evict(j.state, tuples, need)
	if len(evict) != need {
		panic(fmt.Sprintf("engine: policy %s returned %d evictions, need %d", j.policy.Name(), len(evict), need))
	}
	drop := make(map[int]bool, need)
	for _, i := range evict {
		if i < 0 || i >= len(tuples) || drop[i] {
			panic(fmt.Sprintf("engine: policy %s returned invalid eviction %d", j.policy.Name(), i))
		}
		drop[i] = true
	}
	j.m.Evictions += need
	kept := j.cache[:0]
	for i, c := range j.cache {
		if !drop[i] {
			kept = append(kept, c)
		}
	}
	j.cache = kept
	return nil
}
