package engine

import (
	"fmt"
	"sort"

	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/telemetry"
)

// StepChecked is the fault-tolerant boundary around Step: arrivals are
// validated before any state changes, and a panic escaping the step (a buggy
// custom policy, a poisoned model) comes back as an error instead of
// unwinding the embedding system.
//
// Failure semantics differ by class. ErrBadTuple is a clean rejection — the
// step did not happen, no state was touched, and the operator accepts
// further steps. ErrStepFailed means the step aborted midway; the cache may
// be inconsistent, so the caller should Restore from a checkpoint (or
// rebuild the operator) before continuing. Policies wrapped in a
// policy.Ladder never reach the ErrStepFailed path for decision failures —
// the ladder degrades to a simpler rung instead.
func (j *Join) StepChecked(r, s Tuple) (out []Pair, err error) {
	if e := checkKey(r.Key); e != nil {
		return nil, fmt.Errorf("%w: stream R: %v", ErrBadTuple, e)
	}
	if e := checkKey(s.Key); e != nil {
		return nil, fmt.Errorf("%w: stream S: %v", ErrBadTuple, e)
	}
	defer func() {
		if rec := recover(); rec != nil {
			out, err = nil, fmt.Errorf("%w: %v", ErrStepFailed, rec)
			// The cache may be inconsistent, so the bundle's embedded
			// checkpoint may fail to serialize — the span ring and lifecycle
			// records still land, which is the evidence that matters here.
			// Any bundle a mid-step downgrade requested is superseded.
			j.pendingBundle = ""
			j.autoDumpBundle("panic")
		}
	}()
	return j.Step(r, s), nil
}

// checkKey rejects keys outside [MinKey, MaxKey]; the NoValue sentinel (a
// tuple that can never join) is explicitly allowed.
func checkKey(k int) error {
	if k == process.NoValue {
		return nil
	}
	if k < MinKey || k > MaxKey {
		return fmt.Errorf("key %d outside [%d, %d]", k, MinKey, MaxKey)
	}
	return nil
}

// CheckInvariants verifies the operator's structural invariants: the cache
// is within budget and in strictly ascending ID order with nondecreasing
// arrival times and no window-expired entries, and the probe index (hash or
// ordered, whichever the configuration uses) agrees exactly with the cache
// contents. It returns nil or an error wrapping ErrInvariant.
//
// The walk is linear in the cache and index size, so it is meant for tests
// and chaos harnesses, not the hot path.
//
// A failure dumps a diagnostics bundle (reason "invariant") when a flight
// recorder with a bundle directory is attached.
func (j *Join) CheckInvariants() error {
	err := j.checkInvariants()
	if err != nil {
		j.autoDumpBundle("invariant")
	}
	return err
}

func (j *Join) checkInvariants() error {
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("%w: %s", ErrInvariant, fmt.Sprintf(format, args...))
	}
	if len(j.cache) > j.cfg.CacheSize {
		return fail("cache holds %d entries, budget %d", len(j.cache), j.cfg.CacheSize)
	}
	indexable := 0
	for i := range j.cache {
		e := &j.cache[i]
		if e.t.ID < 0 || e.t.ID >= j.nextID {
			return fail("entry %d has ID %d outside [0, %d)", i, e.t.ID, j.nextID)
		}
		if i > 0 {
			prev := &j.cache[i-1]
			if e.t.ID <= prev.t.ID {
				return fail("cache IDs not strictly ascending at %d: %d after %d", i, e.t.ID, prev.t.ID)
			}
			if e.t.Arrived < prev.t.Arrived {
				return fail("arrival times not nondecreasing at %d: %d after %d", i, e.t.Arrived, prev.t.Arrived)
			}
		}
		if e.t.Arrived < 0 || e.t.Arrived >= j.time {
			return fail("entry %d arrived at %d, operator time is %d", i, e.t.Arrived, j.time)
		}
		if w := j.cfg.Window; w > 0 && (j.time-1)-e.t.Arrived > w {
			return fail("entry %d (arrived %d) expired at time %d under window %d", i, e.t.Arrived, j.time-1, w)
		}
		if e.t.Value != process.NoValue {
			indexable++
		}
	}
	return j.checkIndex(indexable, fail)
}

// checkIndex verifies index↔cache agreement: every indexable cache entry has
// exactly one posting under its (stream, value), postings are ordered, and
// no posting points at a missing entry.
func (j *Join) checkIndex(indexable int, fail func(string, ...interface{}) error) error {
	posted := 0
	if j.cfg.Band == 0 {
		for side, b := range j.equi {
			// Sorted keys so a violation is always reported for the same
			// bucket regardless of map iteration order.
			vals := make([]int, 0, len(b))
			for v := range b {
				vals = append(vals, v)
			}
			sort.Ints(vals)
			for _, v := range vals {
				ids := b[v]
				if len(ids) == 0 {
					return fail("equi index side %d retains empty bucket for value %d", side, v)
				}
				for k, id := range ids {
					if k > 0 && ids[k-1] >= id {
						return fail("equi bucket (side %d, value %d) not ID-ascending", side, v)
					}
					if err := j.checkPosting(side, v, id, fail); err != nil {
						return err
					}
				}
				posted += len(ids)
			}
		}
	} else {
		for side, ord := range j.ord {
			for k, p := range ord {
				if k > 0 {
					prev := ord[k-1]
					if prev.v > p.v || (prev.v == p.v && prev.id >= p.id) {
						return fail("ordered index side %d not (value, ID)-ascending at %d", side, k)
					}
				}
				if err := j.checkPosting(side, p.v, p.id, fail); err != nil {
					return err
				}
			}
			posted += len(ord)
		}
	}
	if posted != indexable {
		return fail("index holds %d postings for %d indexable cache entries", posted, indexable)
	}
	return nil
}

// checkPosting verifies one index posting against the cache.
func (j *Join) checkPosting(side, v, id int, fail func(string, ...interface{}) error) error {
	e := j.lookupByID(id)
	if e == nil {
		return fail("index posting (side %d, value %d) points at missing ID %d", side, v, id)
	}
	if int(e.t.Stream) != side || e.t.Value != v {
		return fail("index posting (side %d, value %d, ID %d) disagrees with cached (stream %d, value %d)",
			side, v, id, e.t.Stream, e.t.Value)
	}
	return nil
}

// lookupByID is entryByID without the present-ID precondition: it returns
// nil when the ID is not cached.
func (j *Join) lookupByID(id int) *entry {
	i := sort.Search(len(j.cache), func(k int) bool { return j.cache[k].t.ID >= id })
	if i == len(j.cache) || j.cache[i].t.ID != id {
		return nil
	}
	return &j.cache[i]
}

// FallbackCounts reports the degradation ladder's per-rung fallback
// counters, index-aligned with names, when the configured policy is a
// policy.Ladder (directly or behind the telemetry wrapper). ok is false for
// non-ladder policies.
func (j *Join) FallbackCounts() (names []string, counts []uint64, ok bool) {
	lad, isLadder := unwrapPolicy(j.policy).(*policy.Ladder)
	if !isLadder {
		return nil, nil, false
	}
	names = lad.RungNames()
	counts = make([]uint64, len(names))
	for i := range counts {
		counts[i] = lad.FallbackCount(i)
	}
	return names, counts, true
}

// unwrapPolicy strips instrumentation wrappers (anything with an Unwrap
// method) off a policy.
func unwrapPolicy(p join.Policy) join.Policy {
	for {
		u, ok := p.(interface{ Unwrap() join.Policy })
		if !ok {
			return p
		}
		p = u.Unwrap()
	}
}

// wireDowngrades connects a ladder's downgrade callback to a telemetry
// registry: one ladder_fallback_total counter per (from, to) edge, plus a
// record in the downgrade trace. An OnDowngrade the caller installed first
// keeps firing.
func wireDowngrades(lad *policy.Ladder, reg *telemetry.Registry) {
	prev := lad.OnDowngrade
	lad.OnDowngrade = func(d policy.Downgrade) {
		if prev != nil {
			prev(d)
		}
		reg.Counter(`ladder_fallback_total{from="` + d.From + `",to="` + d.To + `"}`).Inc()
		reason := ""
		if d.Err != nil {
			reason = d.Err.Error()
		}
		reg.Downgrades().Record(telemetry.DowngradeRecord{Step: d.Step, From: d.From, To: d.To, Reason: reason})
	}
}
