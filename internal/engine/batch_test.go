package engine

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/stats"
	"stochstream/internal/telemetry"
)

// TestStepBatchEquivalence pins StepBatch to a loop of Step calls: identical
// pairs, snapshots and metrics for every batch size, across the same config
// matrix the differential harness uses. This is the contract that lets the
// sharded runtime drive shards through StepBatch while the per-shard
// ReferenceJoin differential still speaks plain Step.
func TestStepBatchEquivalence(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"equi", Config{CacheSize: 16, Procs: trendProcs(), Policy: policy.NewHEEB(heebOpts()), Seed: 7}},
		{"band", Config{CacheSize: 12, Band: 3, Procs: trendProcs(), Policy: policy.NewHEEB(heebOpts()), Seed: 7}},
		{"window", Config{CacheSize: 16, Window: 9, Procs: trendProcs(), Policy: policy.NewHEEB(heebOpts()), Seed: 7}},
		{"rand", Config{CacheSize: 8, Seed: 3}},
	}
	for _, tc := range cases {
		for _, batchSize := range []int{1, 2, 7, 64} {
			t.Run(fmt.Sprintf("%s/batch%d", tc.name, batchSize), func(t *testing.T) {
				stepped, err := NewJoin(tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				batched, err := NewJoin(tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				const steps = 1200
				rng := stats.NewRNG(11)
				r := streamFor(tc.cfg, 0, rng.Split(), steps)
				s := streamFor(tc.cfg, 1, rng.Split(), steps)
				for lo := 0; lo < steps; lo += batchSize {
					hi := lo + batchSize
					if hi > steps {
						hi = steps
					}
					batch := make([]TuplePair, 0, hi-lo)
					var want []Pair
					for i := lo; i < hi; i++ {
						rt := Tuple{Key: r[i], Payload: i}
						st := Tuple{Key: s[i], Payload: ^i}
						batch = append(batch, TuplePair{R: rt, S: st})
						want = append(want, copyPairs(stepped.Step(rt, st))...)
					}
					got := batched.StepBatch(batch)
					if !pairSlicesEqual(got, want) {
						t.Fatalf("batch [%d,%d): pairs diverged\n got %v\nwant %v", lo, hi, got, want)
					}
				}
				if sm, bm := stepped.Metrics(), batched.Metrics(); sm != bm {
					t.Fatalf("metrics diverged: stepped %+v batched %+v", sm, bm)
				}
				ss, bs := stepped.Snapshot(), batched.Snapshot()
				if len(ss) != len(bs) {
					t.Fatalf("snapshot lengths diverged: %d vs %d", len(ss), len(bs))
				}
				for i := range ss {
					if ss[i] != bs[i] {
						t.Fatalf("snapshot[%d] diverged: %+v vs %+v", i, ss[i], bs[i])
					}
				}
			})
		}
	}
}

// streamFor generates arrivals: model-driven when the config carries procs,
// uniform small-domain keys (with NoValue sprinkled in) otherwise.
func streamFor(cfg Config, side int, rng *stats.RNG, n int) []int {
	if cfg.Procs[side] != nil {
		return cfg.Procs[side].Generate(rng, n)
	}
	out := make([]int, n)
	for i := range out {
		if rng.IntN(17) == 0 {
			out[i] = process.NoValue
			continue
		}
		out[i] = rng.IntN(25)
	}
	return out
}

func pairSlicesEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStepBatchEmpty pins the trivial cases: nil and empty batches step
// nothing and touch no counters.
func TestStepBatchEmpty(t *testing.T) {
	reg := telemetry.NewRegistry()
	j, err := NewJoin(Config{CacheSize: 4, Seed: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if out := j.StepBatch(nil); len(out) != 0 {
		t.Fatalf("nil batch emitted %d pairs", len(out))
	}
	if out := j.StepBatch([]TuplePair{}); len(out) != 0 {
		t.Fatalf("empty batch emitted %d pairs", len(out))
	}
	if m := j.Metrics(); m.Steps != 0 {
		t.Fatalf("empty batches stepped: %+v", m)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if strings.Contains(buf.String(), "engine_steps_total 1") {
		t.Fatal("empty batch bumped the steps counter")
	}
}

// TestStepBatchTelemetry pins the documented batched-telemetry semantics:
// counters advance by the batch totals, and the latency histogram records
// one observation per batch, not per step.
func TestStepBatchTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	j, err := NewJoin(Config{CacheSize: 4, Seed: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]TuplePair, 10)
	for i := range batch {
		batch[i] = TuplePair{R: Tuple{Key: i}, S: Tuple{Key: i}}
	}
	j.StepBatch(batch)
	snap := reg.Snapshot()
	if got := snap.Counters["engine_steps_total"]; got != 10 {
		t.Fatalf("engine_steps_total = %d, want 10", got)
	}
	latObs := snap.Histograms["engine_step_latency_ns"].Count
	if latObs != 1 {
		t.Fatalf("latency histogram saw %d observations, want 1 per batch", latObs)
	}
}

// TestResize pins the in-place budget change: shrinking evicts down with the
// policy immediately (so the budget invariant holds for CheckInvariants and
// checkpoints), growing defers to the next step, and the post-resize run is
// byte-identical to an oracle resized at the same step.
func TestResize(t *testing.T) {
	cfg := Config{CacheSize: 20, Procs: trendProcs(), Policy: policy.NewHEEB(heebOpts()), Seed: 5}
	refCfg := cfg
	refCfg.Policy = policy.NewHEEB(heebOpts())
	j, err := NewJoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReferenceJoin(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 400
	rng := stats.NewRNG(3)
	r := cfg.Procs[0].Generate(rng.Split(), steps)
	s := cfg.Procs[1].Generate(rng.Split(), steps)
	resizeAt := map[int]int{100: 9, 200: 14, 300: 5}
	for i := 0; i < steps; i++ {
		if n, ok := resizeAt[i]; ok {
			if err := j.Resize(n); err != nil {
				t.Fatal(err)
			}
			if err := ref.Resize(n); err != nil {
				t.Fatal(err)
			}
			if got := len(j.Snapshot()); got > n {
				t.Fatalf("step %d: cache %d exceeds resized budget %d", i, got, n)
			}
			if err := j.CheckInvariants(); err != nil {
				t.Fatalf("step %d: invariants after Resize(%d): %v", i, n, err)
			}
		}
		got := j.Step(Tuple{Key: r[i]}, Tuple{Key: s[i]})
		want := ref.Step(Tuple{Key: r[i]}, Tuple{Key: s[i]})
		if !pairSlicesEqual(got, want) {
			t.Fatalf("step %d: pairs diverged from resized oracle", i)
		}
	}
	if jm, rm := j.Metrics(), ref.Metrics(); jm != rm {
		t.Fatalf("metrics diverged: engine %+v oracle %+v", jm, rm)
	}
}

// TestResizeCheckpointFingerprint: a checkpoint taken after Resize restores
// into an operator built at the new size (the sharded manifest path), and
// not into one built at the old size.
func TestResizeCheckpointFingerprint(t *testing.T) {
	cfg := Config{CacheSize: 12, Procs: trendProcs(), Policy: policy.NewHEEB(heebOpts()), Seed: 5}
	j, err := NewJoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4)
	r := cfg.Procs[0].Generate(rng.Split(), 50)
	s := cfg.Procs[1].Generate(rng.Split(), 50)
	for i := 0; i < 50; i++ {
		j.Step(Tuple{Key: r[i]}, Tuple{Key: s[i]})
	}
	if err := j.Resize(7); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := j.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	mk := func(size int) *Join {
		c := cfg
		c.Policy = policy.NewHEEB(heebOpts())
		c.CacheSize = size
		jj, err := NewJoin(c)
		if err != nil {
			t.Fatal(err)
		}
		return jj
	}
	if err := mk(12).Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into the pre-resize budget should fail the fingerprint")
	}
	fresh := mk(12)
	if err := fresh.Resize(7); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restore into resized operator: %v", err)
	}
}

// TestResizeRejectsBadSize: budgets below one are refused without mutating
// the operator.
func TestResizeRejectsBadSize(t *testing.T) {
	j, err := NewJoin(Config{CacheSize: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	j.Step(Tuple{Key: 1}, Tuple{Key: 2})
	if err := j.Resize(0); err == nil {
		t.Fatal("Resize(0) should fail")
	}
	if err := j.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := j.Metrics().CacheLen; got != 2 {
		t.Fatalf("failed resize mutated the cache: len %d", got)
	}
}
