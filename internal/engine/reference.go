package engine

import (
	"errors"
	"fmt"

	"stochstream/internal/core"
	"stochstream/internal/join"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// ReferenceJoin is the obvious implementation of the operator: a linear scan
// over the cache for matching, per-step allocations, and a full candidate
// copy for every replacement decision. It exists as the oracle for the
// differential and fuzz tests — and for the before/after benchmarks — so the
// indexed Join can be held byte-identical to something trivially auditable.
// Its semantics are the operator's semantics, including the eager pruning of
// window-expired entries before candidate assembly.
//
// It ignores Config.Telemetry; instrument the real operator instead.
type ReferenceJoin struct {
	cfg    Config
	policy join.Policy
	hists  [2]*process.History
	state  *join.State
	cache  []entry
	nextID int
	time   int
	m      Metrics
}

// NewReferenceJoin validates the configuration and builds the oracle.
func NewReferenceJoin(cfg Config) (*ReferenceJoin, error) {
	if cfg.CacheSize < 1 {
		return nil, errors.New("engine: cache size must be >= 1")
	}
	j := &ReferenceJoin{
		cfg:    cfg,
		policy: defaultPolicy(cfg),
		hists:  [2]*process.History{process.NewHistory(), process.NewHistory()},
	}
	simCfg := join.Config{
		CacheSize: cfg.CacheSize,
		Window:    cfg.Window,
		Band:      cfg.Band,
		Warmup:    0,
		Procs:     cfg.Procs,
	}
	j.state = &join.State{Hists: j.hists, Config: simCfg, RNG: stats.NewRNG(cfg.Seed)}
	j.policy.Reset(simCfg, stats.NewRNG(cfg.Seed+1))
	return j, nil
}

// Step is Join.Step written the straightforward way. Unlike Join.Step, the
// returned slice is freshly allocated every call.
func (j *ReferenceJoin) Step(r, s Tuple) []Pair {
	t := j.time
	j.time++
	j.m.Steps++
	j.hists[core.StreamR].Append(r.Key)
	j.hists[core.StreamS].Append(s.Key)
	j.state.Time = t

	// Eager pruning of window-expired entries, as a plain filter.
	if j.cfg.Window > 0 {
		kept := j.cache[:0]
		for _, c := range j.cache {
			if t-c.t.Arrived > j.cfg.Window {
				j.m.Expired++
				continue
			}
			kept = append(kept, c)
		}
		j.cache = kept
	}

	var out []Pair
	for _, c := range j.cache {
		ct := Tuple{Key: c.t.Value, Payload: c.payload}
		switch c.t.Stream {
		case core.StreamR:
			if keysMatch(c.t.Value, s.Key, j.cfg.Band) {
				out = append(out, Pair{Time: t, R: ct, S: s})
			}
		case core.StreamS:
			if keysMatch(c.t.Value, r.Key, j.cfg.Band) {
				out = append(out, Pair{Time: t, R: r, S: ct})
			}
		}
	}
	if keysMatch(r.Key, s.Key, j.cfg.Band) {
		out = append(out, Pair{Time: t, R: r, S: s, SameTime: true})
		j.m.SameTimePairs++
	}
	j.m.Pairs += len(out)

	newEntries := []entry{
		{t: join.Tuple{ID: j.nextID, Value: r.Key, Stream: core.StreamR, Arrived: t}, payload: r.Payload},
		{t: join.Tuple{ID: j.nextID + 1, Value: s.Key, Stream: core.StreamS, Arrived: t}, payload: s.Payload},
	}
	j.nextID += 2
	cands := append(append(make([]entry, 0, len(j.cache)+2), j.cache...), newEntries...)
	need := len(cands) - j.cfg.CacheSize
	if need <= 0 {
		j.cache = cands
		return out
	}
	tuples := make([]join.Tuple, len(cands))
	for i, c := range cands {
		tuples[i] = c.t
	}
	evict := j.policy.Evict(j.state, tuples, need)
	if len(evict) != need {
		panic(fmt.Sprintf("engine: policy %s returned %d evictions, need %d", j.policy.Name(), len(evict), need))
	}
	drop := make(map[int]bool, need)
	for _, i := range evict {
		if i < 0 || i >= len(cands) || drop[i] {
			panic(fmt.Sprintf("engine: policy %s returned invalid eviction %d", j.policy.Name(), i))
		}
		drop[i] = true
	}
	j.m.Evictions += need
	kept := j.cache[:0]
	for i, c := range cands {
		if !drop[i] {
			kept = append(kept, c)
		}
	}
	j.cache = kept
	return out
}

// Metrics returns the oracle's counters.
func (j *ReferenceJoin) Metrics() Metrics {
	m := j.m
	m.CacheLen = len(j.cache)
	return m
}

// Snapshot returns the cached tuples in cache order.
func (j *ReferenceJoin) Snapshot() []join.Tuple {
	out := make([]join.Tuple, len(j.cache))
	for i, c := range j.cache {
		out[i] = c.t
	}
	return out
}
