package engine

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"stochstream/internal/flightrec"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/stats"
	"stochstream/internal/telemetry"
)

// flightJoin builds an operator with a logical-clock flight recorder that
// tracks every key, so tests can assert exact span and lifecycle content.
func flightJoin(t *testing.T, cfg Config, opts flightrec.Options) (*Join, *flightrec.Recorder) {
	t.Helper()
	opts.Clock = flightrec.LogicalClock()
	if opts.SampleEvery == 0 {
		opts.SampleEvery = 1
	}
	rec := flightrec.New(opts)
	cfg.Flight = rec
	j, err := NewJoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return j, rec
}

func spansForStep(spans []flightrec.Span, step int) map[flightrec.Phase][]flightrec.Span {
	by := map[flightrec.Phase][]flightrec.Span{}
	for _, s := range spans {
		if s.Step == step {
			by[s.Phase] = append(by[s.Phase], s)
		}
	}
	return by
}

func TestFlightStepSpans(t *testing.T) {
	// Lfixed evicts oldest-first, so the cache contents at every step are
	// known exactly: after step 1 it holds the step-1 arrivals (keys 2, 3).
	j, rec := flightJoin(t, Config{CacheSize: 2, Window: 2, Policy: &policy.Lfixed{}},
		flightrec.Options{})
	// Three steps: the first fills the cache, the rest each force a
	// replacement decision (score + evict phases).
	j.Step(Tuple{Key: 1}, Tuple{Key: 1})
	j.Step(Tuple{Key: 2}, Tuple{Key: 3})
	j.Step(Tuple{Key: 5}, Tuple{Key: 2})

	spans := rec.Spans()
	s0 := spansForStep(spans, 0)
	for _, ph := range []flightrec.Phase{flightrec.PhaseStep, flightrec.PhaseExpire, flightrec.PhaseProbe, flightrec.PhaseEmit} {
		if len(s0[ph]) != 1 {
			t.Fatalf("step 0 recorded %d %v spans, want 1 (have %v)", len(s0[ph]), ph, s0)
		}
	}
	if len(s0[flightrec.PhaseScore]) != 0 || len(s0[flightrec.PhaseEvict]) != 0 {
		t.Fatalf("step 0 under budget recorded decision phases: %v", s0)
	}
	root := s0[flightrec.PhaseStep][0]
	for _, ph := range []flightrec.Phase{flightrec.PhaseExpire, flightrec.PhaseProbe, flightrec.PhaseEmit} {
		if sp := s0[ph][0]; sp.Parent != root.ID {
			t.Fatalf("%v span parent = %d, want step root %d", ph, sp.Parent, root.ID)
		}
		if sp := s0[ph][0]; sp.Begin < root.Begin || sp.End > root.End {
			t.Fatalf("%v span [%d,%d] outside step root [%d,%d]", ph, sp.Begin, sp.End, root.Begin, root.End)
		}
	}
	// Step 0's arrivals match (keys 1 and 1): the emit span records it.
	if emit := s0[flightrec.PhaseEmit][0]; emit.Keys != 1 || emit.Detail != 1 {
		t.Fatalf("step 0 emit span = %+v, want 1 pair with same-time detail", emit)
	}

	s2 := spansForStep(spans, 2)
	if len(s2[flightrec.PhaseScore]) != 1 || len(s2[flightrec.PhaseEvict]) != 1 {
		t.Fatalf("overflowing step 2 missing decision phases: %v", s2)
	}
	if sc := s2[flightrec.PhaseScore][0]; sc.Keys != 4 || sc.Detail != 2 {
		t.Fatalf("score span = %+v, want 4 candidates / 2 needed", sc)
	}
	// Step 2's S arrival (key 2) probes the cached R entry with key 2.
	if pr := s2[flightrec.PhaseProbe][0]; pr.Keys != 1 {
		t.Fatalf("probe span = %+v, want 1 hit", pr)
	}
}

func TestFlightExpireSpanAndLifecycle(t *testing.T) {
	j, rec := flightJoin(t, Config{CacheSize: 8, Window: 1}, flightrec.Options{})
	j.Step(Tuple{Key: 10}, Tuple{Key: 20})
	j.Step(Tuple{Key: 11}, Tuple{Key: 21})
	// Step 2: the step-0 arrivals (age 2 > window 1) expire.
	j.Step(Tuple{Key: 12}, Tuple{Key: 22})

	s2 := spansForStep(rec.Spans(), 2)
	if exp := s2[flightrec.PhaseExpire][0]; exp.Keys != 2 {
		t.Fatalf("expire span = %+v, want 2 pruned", exp)
	}
	evs := rec.Lifecycle(10)
	if len(evs) != 3 || evs[0].Kind != flightrec.LifeIngest ||
		evs[1].Kind != flightrec.LifeAdmit || evs[2].Kind != flightrec.LifeExpire {
		t.Fatalf("key 10 lifecycle = %+v, want ingest, admit, expire", evs)
	}
	if evs[2].Step != 2 || evs[2].Stream != "R" || evs[2].TupleID != 0 {
		t.Fatalf("expire event = %+v", evs[2])
	}
}

func TestFlightLifecycleMatchAdmitEvict(t *testing.T) {
	j, rec := flightJoin(t, Config{CacheSize: 2}, flightrec.Options{})
	j.Step(Tuple{Key: 5}, Tuple{Key: 6}) // fills the cache
	j.Step(Tuple{Key: 7}, Tuple{Key: 5}) // S arrival 5 matches cached R 5; eviction needed
	evs := rec.Lifecycle(5)
	// Expected for key 5: ingest (R, step 0), admit (step 0), match at step 1
	// (cached R 5 against arrival S 5), ingest (S, step 1), then whatever the
	// policy decided for the new arrival (admit or evict).
	if len(evs) < 5 {
		t.Fatalf("key 5 lifecycle has %d events: %+v", len(evs), evs)
	}
	kinds := make([]flightrec.LifeKind, len(evs))
	for i, e := range evs {
		kinds[i] = e.Kind
	}
	if kinds[0] != flightrec.LifeIngest || kinds[1] != flightrec.LifeAdmit {
		t.Fatalf("key 5 starts %v, want ingest, admit", kinds[:2])
	}
	var match *flightrec.LifeEvent
	for i := range evs {
		if evs[i].Kind == flightrec.LifeMatch {
			match = &evs[i]
		}
	}
	if match == nil || match.Step != 1 || match.Partner != 5 || match.TupleID != 0 {
		t.Fatalf("key 5 match event = %+v", match)
	}
	last := evs[len(evs)-1]
	if last.Kind != flightrec.LifeAdmit && last.Kind != flightrec.LifeEvict {
		t.Fatalf("key 5 ends with %v, want a replacement outcome", last.Kind)
	}
}

func TestFlightLifecycleSampling(t *testing.T) {
	// With a real sampling rate, untracked keys record nothing; tracked keys
	// are exactly the recorder's Sampled set.
	j, rec := flightJoin(t, Config{CacheSize: 64}, flightrec.Options{SampleEvery: 16, SampleSeed: 3})
	for k := 0; k < 128; k += 2 {
		j.Step(Tuple{Key: k}, Tuple{Key: k + 1})
	}
	for k := 0; k < 128; k++ {
		got := rec.Lifecycle(k) != nil
		if got != rec.Sampled(k) {
			t.Fatalf("key %d tracked=%v, Sampled=%v", k, got, rec.Sampled(k))
		}
	}
}

// failingRung always reports a solver failure, driving the ladder down a rung
// on every decision.
type failingRung struct{}

func (failingRung) Name() string                               { return "FAILRUNG" }
func (failingRung) Reset(join.Config, *stats.RNG)              {}
func (failingRung) Evict(*join.State, []join.Tuple, int) []int { panic("unreachable: TryEvict used") }
func (failingRung) TryEvict(*join.State, []join.Tuple, int) ([]int, error) {
	return nil, policy.ErrSolverFailed
}

func TestFlightRungSpansAndDowngradeBundle(t *testing.T) {
	dir := t.TempDir()
	lad := &policy.Ladder{Rungs: []join.Policy{failingRung{}, &policy.Lfixed{}}}
	j, rec := flightJoin(t, Config{CacheSize: 2, Policy: lad, Seed: 9},
		flightrec.Options{BundleDir: dir})

	j.Step(Tuple{Key: 1}, Tuple{Key: 2})
	j.Step(Tuple{Key: 3}, Tuple{Key: 4}) // overflow → decision → downgrade → bundle

	// The failed rung and the rung that decided both have spans under step 1.
	s1 := spansForStep(rec.Spans(), 1)
	rungs := s1[flightrec.PhaseRung]
	if len(rungs) != 2 {
		t.Fatalf("step 1 recorded %d rung spans, want 2: %+v", len(rungs), rungs)
	}
	if rungs[0].Label != "FAILRUNG" || rungs[0].Err != "solver-failed" {
		t.Fatalf("failed rung span = %+v", rungs[0])
	}
	if rungs[1].Label != "LFIXED" || rungs[1].Err != "" {
		t.Fatalf("deciding rung span = %+v", rungs[1])
	}

	// The downgrade dumped exactly one bundle, after the step completed, so
	// its checkpoint equals a checkpoint taken now.
	entries, err := filepath.Glob(filepath.Join(dir, "bundle-*"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("bundles = %v (err %v), want exactly 1", entries, err)
	}
	b, err := flightrec.LoadBundle(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Reason != "downgrade" || b.Manifest.Step != 1 {
		t.Fatalf("manifest = %+v, want downgrade at step 1", b.Manifest)
	}
	var now bytes.Buffer
	if err := j.Checkpoint(&now); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Checkpoint, now.Bytes()) {
		t.Fatal("bundle checkpoint differs from the operator's post-step state")
	}
}

func TestFlightPanicBundle(t *testing.T) {
	dir := t.TempDir()
	j, _ := flightJoin(t, Config{CacheSize: 2, Policy: &panicPolicy{after: 0}},
		flightrec.Options{BundleDir: dir})
	if _, err := j.StepChecked(Tuple{Key: 1}, Tuple{Key: 2}); err != nil {
		t.Fatalf("first step fits the cache without a decision: %v", err)
	}
	_, err := j.StepChecked(Tuple{Key: 3}, Tuple{Key: 4})
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("err = %v, want ErrStepFailed", err)
	}
	entries, _ := filepath.Glob(filepath.Join(dir, "bundle-*"))
	if len(entries) != 1 {
		t.Fatalf("bundles = %v, want exactly 1", entries)
	}
	b, err := flightrec.LoadBundle(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Reason != "panic" {
		t.Fatalf("manifest reason = %q, want panic", b.Manifest.Reason)
	}
}

func TestFlightInvariantBundle(t *testing.T) {
	dir := t.TempDir()
	j, _ := flightJoin(t, Config{CacheSize: 4}, flightrec.Options{BundleDir: dir})
	j.Step(Tuple{Key: 1}, Tuple{Key: 2})
	// Corrupt the cache: an ID from the future violates the invariant walk.
	j.cache[0].t.ID = 99
	if err := j.CheckInvariants(); !errors.Is(err, ErrInvariant) {
		t.Fatalf("err = %v, want ErrInvariant", err)
	}
	entries, _ := filepath.Glob(filepath.Join(dir, "bundle-*"))
	if len(entries) != 1 {
		t.Fatalf("bundles = %v, want exactly 1", entries)
	}
	b, err := flightrec.LoadBundle(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Reason != "invariant" {
		t.Fatalf("manifest reason = %q, want invariant", b.Manifest.Reason)
	}
}

func TestFlightBundleRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	cfg := Config{CacheSize: 4, Window: 8, Seed: 17, Telemetry: reg}
	j, _ := flightJoin(t, cfg, flightrec.Options{BundleDir: dir})
	step := func(op *Join, t0, n int) []Pair {
		var all []Pair
		for i := t0; i < t0+n; i++ {
			all = append(all, append([]Pair(nil), op.Step(Tuple{Key: i % 5}, Tuple{Key: (i + 1) % 5})...)...)
		}
		return all
	}
	step(j, 0, 20)
	bdir, err := j.DumpBundle("signal")
	if err != nil {
		t.Fatal(err)
	}
	b, err := flightrec.LoadBundle(bdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"telemetry.json", "downgrades.json", "checkpoint.sscp"} {
		if _, err := os.Stat(filepath.Join(bdir, f)); err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
	}

	// Restore the bundle's checkpoint into a fresh operator; both must
	// produce identical pairs on the continuation.
	fresh, _ := flightJoin(t, Config{CacheSize: 4, Window: 8, Seed: 17}, flightrec.Options{})
	if err := fresh.Restore(bytes.NewReader(b.Checkpoint)); err != nil {
		t.Fatal(err)
	}
	want := step(j, 20, 15)
	got := step(fresh, 20, 15)
	if len(want) != len(got) {
		t.Fatalf("continuations diverge: %d vs %d pairs", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pair %d: %+v vs %+v", i, want[i], got[i])
		}
	}
}

func TestFlightSolverSpans(t *testing.T) {
	lad := policy.NewDefaultLadder(3, 200, policy.HEEBOptions{Mode: policy.HEEBDirect, LifetimeEstimate: 4})
	j, rec := flightJoin(t, Config{CacheSize: 4, Procs: trendProcs(), Policy: lad, Seed: 11},
		flightrec.Options{})
	un := flightrec.AttachSolver(rec)
	defer un()
	rng := stats.NewRNG(33)
	rs, ss := rng.Split(), rng.Split()
	for i := 0; i < 32; i++ {
		j.Step(Tuple{Key: trendKey(rs, i, 0)}, Tuple{Key: trendKey(ss, i, 1)})
	}
	solves := 0
	for _, s := range rec.Spans() {
		if s.Phase == flightrec.PhaseSolve {
			solves++
			if s.Label != "ssp" && s.Label != "cost-scaling" {
				t.Fatalf("solve span label = %q", s.Label)
			}
			if s.Parent == 0 {
				t.Fatalf("solve span has no parent: %+v", s)
			}
		}
	}
	if solves == 0 {
		t.Fatal("FlowExpect decisions recorded no solver spans")
	}
}

// trendKey draws a deterministic key stream for the solver-span test.
func trendKey(rng *stats.RNG, i, side int) int {
	return 2 + side + i%7 + rng.IntN(5)
}
