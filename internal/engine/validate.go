package engine

import (
	"errors"
	"fmt"
	"math"

	"stochstream/internal/process"
)

// Key domain accepted by StepChecked. The simulator's value domains all fit
// in int32 (process.NoValue = MinInt32 marks a never-joining tuple), and the
// band probe computes key±Band without overflow checks, so keys near the int
// extremes would corrupt the ordered-index interval search. MinKey starts
// one above NoValue so the sentinel stays unambiguous.
const (
	MinKey = math.MinInt32 + 1
	MaxKey = math.MaxInt32
)

// Validate checks the configuration for every error NewJoin would surface
// and for model parameterizations that would otherwise panic deep inside a
// run (a GaussianWalk with σ ≤ 0 only blows up when the policy first
// forecasts with it). NewJoin calls it; callers that assemble configurations
// from external input can call it earlier for a cheaper rejection path.
func (cfg Config) Validate() error {
	if cfg.CacheSize < 1 {
		return errors.New("engine: cache size must be >= 1")
	}
	if cfg.Window < 0 {
		return fmt.Errorf("engine: window must be >= 0, got %d", cfg.Window)
	}
	if cfg.Band < 0 {
		return fmt.Errorf("engine: band must be >= 0, got %d", cfg.Band)
	}
	for i, p := range cfg.Procs {
		if p == nil {
			continue
		}
		if v, ok := p.(process.Validator); ok {
			if err := v.Validate(); err != nil {
				return fmt.Errorf("engine: stream %d model: %w", i, err)
			}
		}
	}
	return nil
}
