// Package engine wraps the joining framework as an online operator a stream
// system can embed: tuples are pushed in step by step and the operator emits
// the actual joined pairs (not just counts), applies the configured
// replacement policy under the cache budget, and exposes cache snapshots and
// running metrics. The batch simulator in internal/join is the measurement
// harness; this is the adoption surface.
//
// The hot path is indexed: equijoins probe a per-stream hash index on the
// join key, band joins probe a per-stream ordered (value, ID) index, and
// window expiry is a binary-search prefix cut instead of a scan. All
// per-step scratch (candidate tuples, eviction marks, match buffers, the
// output slice) is reused across steps. ReferenceJoin in this package is the
// obvious linear-scan implementation with identical semantics; the
// differential tests hold the two byte-identical.
package engine

import (
	"context"
	"fmt"
	"sort"

	"stochstream/internal/core"
	"stochstream/internal/flightrec"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/stats"
	"stochstream/internal/telemetry"
)

// Tuple is a stream tuple flowing through the operator. Payload carries the
// caller's record; the operator only inspects Key.
type Tuple struct {
	// Key is the join attribute value.
	Key int
	// Payload is opaque to the operator.
	Payload interface{}
}

// Pair is one join result: the new arrival matched a cached tuple from the
// other stream, or the two arrivals of one step matched each other.
type Pair struct {
	// Time is the step at which the pair was produced.
	Time int
	// R and S are the two sides' tuples.
	R, S Tuple
	// SameTime marks the pair of the step's own two arrivals. Such pairs
	// are produced regardless of replacement decisions, which is why the
	// paper's MAX-subset accounting (and the simulator) excludes them; a
	// real operator still has to deliver them.
	SameTime bool
}

// Config configures the operator; it reuses the simulator's configuration
// semantics (cache size, window, band, models).
type Config struct {
	CacheSize int
	// Window > 0 enables sliding-window semantics.
	Window int
	// Band > 0 generalizes the equijoin to |kR − kS| <= Band.
	Band int
	// Procs carries the stream models for model-driven policies.
	Procs [2]process.Process
	// Policy decides replacements; nil defaults to HEEB with the models (or
	// RAND when no models are given).
	//lint:ignore fingerprintcover the checkpoint fingerprints the policy by name (PolicyName); the value is construction wiring, and a name mismatch already fails restore
	Policy join.Policy
	// Seed drives the policy's randomness.
	Seed uint64
	// Telemetry, when non-nil, instruments the operator: per-step latency
	// histogram and pair/eviction counters on Step, and the policy wrapped
	// with telemetry.InstrumentedPolicy (scoring latency, decision counters,
	// sampled decision-trace records). nil keeps the hot path bare.
	Telemetry *telemetry.Registry
	// Flight, when non-nil, attaches the flight recorder: Step is decomposed
	// into recorded phase spans, a hash-sampled key subset gets lifecycle
	// records, and faults (invariant failures, recovered panics, ladder
	// downgrades) dump diagnostics bundles when the recorder has a bundle
	// directory. nil keeps the hot path bare. See internal/flightrec.
	Flight *flightrec.Recorder
}

// Metrics is a snapshot of the operator's counters.
//
// Update semantics (the PR-1 review drift around CacheLen made this worth
// pinning): Steps, Pairs, SameTimePairs, Evictions and Expired are
// incremented inline on the Step hot path, so a Metrics value reflects
// every step completed before the snapshot; CacheLen alone is recomputed
// from the live cache at snapshot time by Metrics(), so it is exact even
// before the first step and on admit-without-evict steps. The
// Config.Telemetry registry carries only the inline class
// (engine_steps_total, engine_pairs_total, engine_evictions_total and the
// step-latency histogram); cache occupancy is read via Metrics().
// See docs/observability.md, "Snapshot semantics".
type Metrics struct {
	Steps int
	// Pairs counts all emitted results; SameTimePairs the subset produced
	// by a step's own two arrivals (Pairs − SameTimePairs is the
	// policy-dependent MAX-subset count the simulator reports).
	Pairs         int
	SameTimePairs int
	Evictions     int
	// Expired counts window-expired tuples pruned from the cache before
	// candidate assembly. Pruned slots are immediately reusable, so they
	// never consume replacement decisions.
	Expired  int
	CacheLen int
}

// Join is a step-driven binary stream join operator. It is not safe for
// concurrent use; wrap calls in the caller's serialization or use Run.
type Join struct {
	cfg    Config
	policy join.Policy
	hists  [2]*process.History
	state  *join.State
	// cache holds the admitted entries in ascending ID order, which is also
	// arrival order — Step appends fresh IDs and evictions preserve order.
	// Two invariants follow: Arrived is nondecreasing along the slice (so
	// window expiry is a prefix), and iterating the cache front to back is
	// the seed implementation's emission order.
	cache  []entry
	nextID int
	time   int
	m      Metrics

	// equi indexes the cache for Band == 0: per stream, join key → IDs of
	// cached entries with that key, ascending. Empty buckets are deleted so
	// a drifting key domain (the trend models) cannot leak memory.
	//lint:ignore snapcomplete pure function of the cache; Restore re-admits every entry through admit, which rebuilds the index
	equi [2]map[int][]int
	// ord indexes the cache for Band > 0: per stream, (value, ID) ascending,
	// probed by binary search over the band interval.
	//lint:ignore snapcomplete pure function of the cache; Restore re-admits every entry through admit, which rebuilds the index
	ord [2][]valID

	// Step-scoped scratch, reused across steps. out backs Step results,
	// batchOut StepBatch results; they are distinct so an interleaved
	// Step/StepBatch sequence cannot alias a still-visible result slice
	// sooner than the documented "valid until the next call" contract.
	out      []Pair       //lint:ignore snapcomplete step-scoped scratch, dead between calls
	batchOut []Pair       //lint:ignore snapcomplete step-scoped scratch, dead between calls
	tuples   []join.Tuple //lint:ignore snapcomplete step-scoped scratch, dead between calls
	drop     []bool       //lint:ignore snapcomplete step-scoped scratch, dead between calls
	probeR   []int        //lint:ignore snapcomplete step-scoped scratch, dead between calls
	probeS   []int        //lint:ignore snapcomplete step-scoped scratch, dead between calls

	// Telemetry handles, resolved once in NewJoin so Step pays only clock
	// reads and atomic writes; all nil when Config.Telemetry is nil.
	stepLatency  *telemetry.Histogram
	stepCount    *telemetry.Counter
	pairCount    *telemetry.Counter
	evictCount   *telemetry.Counter
	expiredCount *telemetry.Counter

	// Flight-recorder state (see flight.go). rec is Config.Flight (nil keeps
	// the hot path bare); now is the resolved clock — the recorder's when one
	// is attached, the wall seam otherwise; pendingBundle carries a mid-step
	// fault reason to closeStep, which dumps once the state is consistent.
	rec *flightrec.Recorder
	now func() int64
	//lint:ignore snapcomplete mid-step fault note consumed by closeStep; checkpoints run between steps, where it is always empty
	pendingBundle string
}

type entry struct {
	t       join.Tuple
	payload interface{}
}

// valID is one ordered-index posting.
type valID struct{ v, id int }

// NewJoin validates the configuration and builds the operator.
func NewJoin(cfg Config) (*Join, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pol := defaultPolicy(cfg)
	lad, _ := pol.(*policy.Ladder)
	if lad != nil && cfg.Telemetry != nil {
		wireDowngrades(lad, cfg.Telemetry)
	}
	if cfg.Telemetry != nil {
		pol = telemetry.InstrumentPolicy(pol, cfg.Telemetry)
	}
	j := &Join{
		cfg:    cfg,
		policy: pol,
		hists:  [2]*process.History{process.NewHistory(), process.NewHistory()},
	}
	j.initFlight(lad)
	if cfg.Band == 0 {
		j.equi = [2]map[int][]int{{}, {}}
	}
	if reg := cfg.Telemetry; reg != nil {
		j.stepLatency = reg.Histogram("engine_step_latency_ns")
		j.stepCount = reg.Counter("engine_steps_total")
		j.pairCount = reg.Counter("engine_pairs_total")
		j.evictCount = reg.Counter("engine_evictions_total")
		j.expiredCount = reg.Counter("engine_expired_total")
	}
	simCfg := join.Config{
		CacheSize: cfg.CacheSize,
		Window:    cfg.Window,
		Band:      cfg.Band,
		Warmup:    0,
		Procs:     cfg.Procs,
	}
	j.state = &join.State{Hists: j.hists, Config: simCfg, RNG: stats.NewRNG(cfg.Seed)}
	pol.Reset(simCfg, stats.NewRNG(cfg.Seed+1))
	return j, nil
}

// Step feeds one arrival from each stream (the paper's synchronized-step
// model) and returns the result pairs produced at this step. Same-time
// arrivals are joined and emitted too — a real operator must deliver them
// even though replacement policies cannot influence them.
//
// The returned slice is owned by the operator and valid only until the next
// Step or StepBatch call; callers that retain pairs must copy them.
func (j *Join) Step(r, s Tuple) []Pair {
	var startNs int64
	if j.stepLatency != nil || j.rec != nil {
		startNs = j.now()
	}
	out, pairs, evictions := j.stepCore(r, s, j.out[:0])
	j.out = out
	j.observeStep(startNs, pairs, evictions, 1)
	return out
}

// stepCore is one synchronized step minus the per-call telemetry: it appends
// this step's pairs to out and returns the grown slice plus the pair and
// eviction counts. Step and StepBatch wrap it — Step observes latency per
// call, StepBatch once per batch — so both share one state machine and stay
// byte-identical per step.
func (j *Join) stepCore(r, s Tuple, out []Pair) ([]Pair, int, int) {
	var stepSpan, sp flightrec.Active
	if j.rec != nil {
		stepSpan = j.rec.BeginStep(j.time)
	}
	t := j.time
	j.time++
	j.m.Steps++
	j.hists[core.StreamR].Append(r.Key)
	j.hists[core.StreamS].Append(s.Key)
	j.state.Time = t

	// Admission happens below, but the tuple IDs are fixed now, so ingest
	// lifecycle events can carry them.
	rT := join.Tuple{ID: j.nextID, Value: r.Key, Stream: core.StreamR, Arrived: t}
	sT := join.Tuple{ID: j.nextID + 1, Value: s.Key, Stream: core.StreamS, Arrived: t}
	j.nextID += 2
	if j.rec != nil {
		j.lifeTuple(flightrec.LifeIngest, t, rT, 0)
		j.lifeTuple(flightrec.LifeIngest, t, sT, 0)
		sp = j.rec.Begin(flightrec.PhaseExpire)
	}
	expired := j.pruneExpired(t)
	if j.rec != nil {
		j.rec.End(sp, expired, 0)
	}
	n0 := len(out)
	out = j.emitMatches(t, r, s, out)
	pairs := len(out) - n0

	// Admission + replacement, mirroring the simulator's candidate order:
	// cached entries in cache order, then the two arrivals.
	need := len(j.cache) + 2 - j.cfg.CacheSize
	if need <= 0 {
		j.admit(entry{t: rT, payload: r.Payload})
		j.admit(entry{t: sT, payload: s.Payload})
		if j.rec != nil {
			j.lifeTuple(flightrec.LifeAdmit, t, rT, 0)
			j.lifeTuple(flightrec.LifeAdmit, t, sT, 0)
		}
		j.closeStep(stepSpan, pairs, 0)
		return out, pairs, 0
	}
	j.tuples = j.tuples[:0]
	for i := range j.cache {
		j.tuples = append(j.tuples, j.cache[i].t)
	}
	j.tuples = append(j.tuples, rT, sT)
	if j.rec != nil {
		sp = j.rec.Begin(flightrec.PhaseScore)
	}
	evict := j.policy.Evict(j.state, j.tuples, need)
	if j.rec != nil {
		j.rec.End(sp, len(j.tuples), int64(need))
	}
	if len(evict) != need {
		panic(fmt.Sprintf("engine: policy %s returned %d evictions, need %d", j.policy.Name(), len(evict), need))
	}
	if j.rec != nil {
		sp = j.rec.Begin(flightrec.PhaseEvict)
	}
	total := len(j.tuples)
	if cap(j.drop) < total {
		j.drop = make([]bool, total)
	}
	drop := j.drop[:total]
	for _, i := range evict {
		if i < 0 || i >= total || drop[i] {
			panic(fmt.Sprintf("engine: policy %s returned invalid eviction %d", j.policy.Name(), i))
		}
		drop[i] = true
	}
	j.m.Evictions += need
	nCached := total - 2
	kept := j.cache[:0] // forward compaction: write index never passes read index
	for i := 0; i < nCached; i++ {
		if drop[i] {
			j.indexRemove(&j.cache[i])
			if j.rec != nil {
				j.lifeTuple(flightrec.LifeEvict, t, j.cache[i].t, 0)
			}
		} else {
			kept = append(kept, j.cache[i])
		}
	}
	j.cache = kept
	if !drop[nCached] {
		j.admit(entry{t: rT, payload: r.Payload})
	}
	if !drop[nCached+1] {
		j.admit(entry{t: sT, payload: s.Payload})
	}
	if j.rec != nil {
		arrivalKind := func(dropped bool) flightrec.LifeKind {
			if dropped {
				return flightrec.LifeEvict
			}
			return flightrec.LifeAdmit
		}
		j.lifeTuple(arrivalKind(drop[nCached]), t, rT, 0)
		j.lifeTuple(arrivalKind(drop[nCached+1]), t, sT, 0)
	}
	for _, i := range evict {
		drop[i] = false
	}
	if j.rec != nil {
		j.rec.End(sp, need, int64(len(j.cache)))
	}
	j.closeStep(stepSpan, pairs, need)
	return out, pairs, need
}

// pruneExpired evicts every window-expired entry before candidate assembly
// and returns how many it pruned. Arrival times are nondecreasing along the
// ID-ordered cache, so the expired entries form a prefix found by binary
// search.
func (j *Join) pruneExpired(t int) int {
	w := j.cfg.Window
	if w <= 0 || len(j.cache) == 0 {
		return 0
	}
	cut := sort.Search(len(j.cache), func(i int) bool { return t-j.cache[i].t.Arrived <= w })
	if cut == 0 {
		return 0
	}
	for i := 0; i < cut; i++ {
		j.indexRemove(&j.cache[i])
		if j.rec != nil {
			j.lifeTuple(flightrec.LifeExpire, t, j.cache[i].t, 0)
		}
	}
	j.m.Expired += cut
	if j.expiredCount != nil {
		j.expiredCount.Add(int64(cut))
	}
	j.cache = append(j.cache[:0], j.cache[cut:]...)
	return cut
}

// emitMatches probes the index with both arrivals and appends the resulting
// pairs to out in cache (ID) order — exactly the order a front-to-back linear
// scan produces — followed by the same-time pair if the arrivals match.
func (j *Join) emitMatches(t int, r, s Tuple, out []Pair) []Pair {
	n0 := len(out)
	var sp flightrec.Active
	if j.rec != nil {
		sp = j.rec.Begin(flightrec.PhaseProbe)
	}
	rm := j.probeMatches(core.StreamR, s.Key, j.probeR[:0])
	sm := j.probeMatches(core.StreamS, r.Key, j.probeS[:0])
	j.probeR, j.probeS = rm, sm
	if j.rec != nil {
		j.rec.End(sp, len(rm)+len(sm), 0)
		sp = j.rec.Begin(flightrec.PhaseEmit)
	}
	// Merge the two ID-ascending match lists; an entry appears in at most
	// one of them (they are disjoint streams).
	i, k := 0, 0
	for i < len(rm) || k < len(sm) {
		if k >= len(sm) || (i < len(rm) && rm[i] < sm[k]) {
			e := j.entryByID(rm[i])
			i++
			out = append(out, Pair{Time: t, R: Tuple{Key: e.t.Value, Payload: e.payload}, S: s})
			if j.rec != nil {
				j.lifeMatch(t, e.t, s.Key, core.StreamS)
			}
		} else {
			e := j.entryByID(sm[k])
			k++
			out = append(out, Pair{Time: t, R: r, S: Tuple{Key: e.t.Value, Payload: e.payload}})
			if j.rec != nil {
				j.lifeMatch(t, e.t, r.Key, core.StreamR)
			}
		}
	}
	sameTime := 0
	if keysMatch(r.Key, s.Key, j.cfg.Band) {
		out = append(out, Pair{Time: t, R: r, S: s, SameTime: true})
		j.m.SameTimePairs++
		sameTime = 1
		if j.rec != nil {
			j.lifeKey(flightrec.LifeMatch, t, r.Key, core.StreamR, s.Key)
			if s.Key != r.Key {
				j.lifeKey(flightrec.LifeMatch, t, s.Key, core.StreamS, r.Key)
			}
		}
	}
	j.m.Pairs += len(out) - n0
	if j.rec != nil {
		j.rec.End(sp, len(out)-n0, int64(sameTime))
	}
	return out
}

// lifeMatch records a match for both sides of one emitted pair: the cached
// tuple's key (with its ID) and, under a band join where the keys differ,
// the arrival's key too. Callers guard on j.rec != nil.
func (j *Join) lifeMatch(t int, cached join.Tuple, arrivalKey int, arrivalStream core.StreamID) {
	j.lifeTuple(flightrec.LifeMatch, t, cached, arrivalKey)
	if arrivalKey != cached.Value {
		j.lifeKey(flightrec.LifeMatch, t, arrivalKey, arrivalStream, cached.Value)
	}
}

// probeMatches appends the IDs of cached entries on the given stream whose
// value joins an arrival with key k, in ascending ID order.
func (j *Join) probeMatches(side core.StreamID, k int, ids []int) []int {
	if k == process.NoValue {
		return ids
	}
	if j.cfg.Band == 0 {
		return append(ids, j.equi[side][k]...)
	}
	ord := j.ord[side]
	lo, hi := k-j.cfg.Band, k+j.cfg.Band
	n0 := len(ids)
	i := sort.Search(len(ord), func(x int) bool { return ord[x].v >= lo })
	for ; i < len(ord) && ord[i].v <= hi; i++ {
		ids = append(ids, ord[i].id)
	}
	// The interval is value-ordered; restore ID order for emission.
	sort.Ints(ids[n0:])
	return ids
}

// entryByID locates a cached entry by its (index-supplied, hence present)
// ID via binary search over the ID-ordered cache.
func (j *Join) entryByID(id int) *entry {
	i := sort.Search(len(j.cache), func(k int) bool { return j.cache[k].t.ID >= id })
	return &j.cache[i]
}

// admit appends an entry to the cache and indexes it. Admissions always
// carry the largest IDs seen so far, preserving the cache's ID order.
func (j *Join) admit(e entry) {
	j.cache = append(j.cache, e)
	j.indexAdd(&j.cache[len(j.cache)-1])
}

func (j *Join) indexAdd(e *entry) {
	if e.t.Value == process.NoValue {
		return // can never join; not worth a posting
	}
	if j.cfg.Band == 0 {
		j.equi[e.t.Stream][e.t.Value] = append(j.equi[e.t.Stream][e.t.Value], e.t.ID)
		return
	}
	ord := j.ord[e.t.Stream]
	x := valID{v: e.t.Value, id: e.t.ID}
	i := sort.Search(len(ord), func(k int) bool {
		return ord[k].v > x.v || (ord[k].v == x.v && ord[k].id >= x.id)
	})
	ord = append(ord, valID{})
	copy(ord[i+1:], ord[i:])
	ord[i] = x
	j.ord[e.t.Stream] = ord
}

func (j *Join) indexRemove(e *entry) {
	if e.t.Value == process.NoValue {
		return
	}
	if j.cfg.Band == 0 {
		b := j.equi[e.t.Stream]
		ids := b[e.t.Value]
		i := sort.SearchInts(ids, e.t.ID)
		ids = append(ids[:i], ids[i+1:]...)
		if len(ids) == 0 {
			delete(b, e.t.Value)
		} else {
			b[e.t.Value] = ids
		}
		return
	}
	ord := j.ord[e.t.Stream]
	i := sort.Search(len(ord), func(k int) bool {
		return ord[k].v > e.t.Value || (ord[k].v == e.t.Value && ord[k].id >= e.t.ID)
	})
	j.ord[e.t.Stream] = append(ord[:i], ord[i+1:]...)
}

// keysMatch reports whether two join keys match under the band predicate;
// NoValue never matches (and is kept away from the band arithmetic, whose
// interval endpoints would be meaningless near it).
func keysMatch(a, b, band int) bool {
	if a == process.NoValue || b == process.NoValue {
		return false
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= band
}

// Metrics returns the operator's counters. CacheLen is recomputed from the
// live cache at snapshot time, so it is accurate on every path — including
// before the first step and on steps that admit without evicting.
func (j *Join) Metrics() Metrics {
	m := j.m
	m.CacheLen = len(j.cache)
	return m
}

// Snapshot returns the cached tuples (keys and streams) in cache order, for
// observability and tests.
func (j *Join) Snapshot() []join.Tuple {
	out := make([]join.Tuple, len(j.cache))
	for i, c := range j.cache {
		out[i] = c.t
	}
	return out
}

// Input is one synchronized step of arrivals for Run.
type Input struct {
	R, S Tuple
}

// Run drives the operator from a channel of step inputs until the channel
// closes or the context is cancelled, sending every result pair to the out
// channel. It owns the out channel and closes it on return.
func (j *Join) Run(ctx context.Context, in <-chan Input, out chan<- Pair) error {
	defer close(out)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case step, ok := <-in:
			if !ok {
				return nil
			}
			for _, p := range j.Step(step.R, step.S) {
				select {
				case out <- p:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
	}
}

// defaultPolicy resolves Config.Policy: HEEB when models are available,
// RAND otherwise.
func defaultPolicy(cfg Config) join.Policy {
	if cfg.Policy != nil {
		return cfg.Policy
	}
	if cfg.Procs[0] != nil && cfg.Procs[1] != nil {
		return newDefaultHEEB()
	}
	return &randPolicy{}
}

// newDefaultHEEB builds the default model-driven policy: direct HEEB with α
// derived from the cache size (the paper's fallback choice).
func newDefaultHEEB() join.Policy {
	return policy.NewHEEB(policy.HEEBOptions{Mode: policy.HEEBDirect})
}

type randPolicy struct{ rng *stats.RNG }

func (p *randPolicy) Name() string                        { return "RAND" }
func (p *randPolicy) Reset(_ join.Config, rng *stats.RNG) { p.rng = rng }
func (p *randPolicy) Evict(_ *join.State, cands []join.Tuple, n int) []int {
	return p.rng.Perm(len(cands))[:n]
}

// SnapshotState implements join.StateSnapshotter: the private RNG is the
// policy's only state.
func (p *randPolicy) SnapshotState() ([]byte, error) { return p.rng.MarshalBinary() }

// RestoreState implements join.StateSnapshotter.
func (p *randPolicy) RestoreState(data []byte) error { return p.rng.UnmarshalBinary(data) }
