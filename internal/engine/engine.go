// Package engine wraps the joining framework as an online operator a stream
// system can embed: tuples are pushed in step by step and the operator emits
// the actual joined pairs (not just counts), applies the configured
// replacement policy under the cache budget, and exposes cache snapshots and
// running metrics. The batch simulator in internal/join is the measurement
// harness; this is the adoption surface.
package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"stochstream/internal/core"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/stats"
	"stochstream/internal/telemetry"
)

// Tuple is a stream tuple flowing through the operator. Payload carries the
// caller's record; the operator only inspects Key.
type Tuple struct {
	// Key is the join attribute value.
	Key int
	// Payload is opaque to the operator.
	Payload interface{}
}

// Pair is one join result: the new arrival matched a cached tuple from the
// other stream, or the two arrivals of one step matched each other.
type Pair struct {
	// Time is the step at which the pair was produced.
	Time int
	// R and S are the two sides' tuples.
	R, S Tuple
	// SameTime marks the pair of the step's own two arrivals. Such pairs
	// are produced regardless of replacement decisions, which is why the
	// paper's MAX-subset accounting (and the simulator) excludes them; a
	// real operator still has to deliver them.
	SameTime bool
}

// Config configures the operator; it reuses the simulator's configuration
// semantics (cache size, window, band, models).
type Config struct {
	CacheSize int
	// Window > 0 enables sliding-window semantics.
	Window int
	// Band > 0 generalizes the equijoin to |kR − kS| <= Band.
	Band int
	// Procs carries the stream models for model-driven policies.
	Procs [2]process.Process
	// Policy decides replacements; nil defaults to HEEB with the models (or
	// RAND when no models are given).
	Policy join.Policy
	// Seed drives the policy's randomness.
	Seed uint64
	// Telemetry, when non-nil, instruments the operator: per-step latency
	// histogram and pair/eviction counters on Step, and the policy wrapped
	// with telemetry.InstrumentedPolicy (scoring latency, decision counters,
	// sampled decision-trace records). nil keeps the hot path bare.
	Telemetry *telemetry.Registry
}

// Metrics is a snapshot of the operator's counters.
type Metrics struct {
	Steps int
	// Pairs counts all emitted results; SameTimePairs the subset produced
	// by a step's own two arrivals (Pairs − SameTimePairs is the
	// policy-dependent MAX-subset count the simulator reports).
	Pairs         int
	SameTimePairs int
	Evictions     int
	CacheLen      int
}

// Join is a step-driven binary stream join operator. It is not safe for
// concurrent use; wrap calls in the caller's serialization or use Run.
type Join struct {
	cfg    Config
	policy join.Policy
	hists  [2]*process.History
	state  *join.State
	cache  []entry
	nextID int
	time   int
	m      Metrics

	// Telemetry handles, resolved once in NewJoin so Step pays only clock
	// reads and atomic writes; all nil when Config.Telemetry is nil.
	stepLatency *telemetry.Histogram
	stepCount   *telemetry.Counter
	pairCount   *telemetry.Counter
	evictCount  *telemetry.Counter
}

type entry struct {
	t       join.Tuple
	payload interface{}
}

// NewJoin validates the configuration and builds the operator.
func NewJoin(cfg Config) (*Join, error) {
	if cfg.CacheSize < 1 {
		return nil, errors.New("engine: cache size must be >= 1")
	}
	pol := cfg.Policy
	if pol == nil {
		if cfg.Procs[0] != nil && cfg.Procs[1] != nil {
			pol = newDefaultHEEB()
		} else {
			pol = &randPolicy{}
		}
	}
	if cfg.Telemetry != nil {
		pol = telemetry.InstrumentPolicy(pol, cfg.Telemetry)
	}
	j := &Join{
		cfg:    cfg,
		policy: pol,
		hists:  [2]*process.History{process.NewHistory(), process.NewHistory()},
	}
	if reg := cfg.Telemetry; reg != nil {
		j.stepLatency = reg.Histogram("engine_step_latency_ns")
		j.stepCount = reg.Counter("engine_steps_total")
		j.pairCount = reg.Counter("engine_pairs_total")
		j.evictCount = reg.Counter("engine_evictions_total")
	}
	simCfg := join.Config{
		CacheSize: cfg.CacheSize,
		Window:    cfg.Window,
		Band:      cfg.Band,
		Warmup:    0,
		Procs:     cfg.Procs,
	}
	j.state = &join.State{Hists: j.hists, Config: simCfg, RNG: stats.NewRNG(cfg.Seed)}
	pol.Reset(simCfg, stats.NewRNG(cfg.Seed+1))
	return j, nil
}

// Step feeds one arrival from each stream (the paper's synchronized-step
// model) and returns the result pairs produced at this step. Same-time
// arrivals are joined and emitted too — a real operator must deliver them
// even though replacement policies cannot influence them.
func (j *Join) Step(r, s Tuple) []Pair {
	var start time.Time
	if j.stepLatency != nil {
		start = time.Now()
	}
	t := j.time
	j.time++
	j.m.Steps++
	j.hists[core.StreamR].Append(r.Key)
	j.hists[core.StreamS].Append(s.Key)
	j.state.Time = t

	var out []Pair
	match := func(a, b int) bool {
		if a == process.NoValue || b == process.NoValue {
			return false
		}
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= j.cfg.Band
	}
	for _, c := range j.cache {
		if j.cfg.Window > 0 && t-c.t.Arrived > j.cfg.Window {
			continue
		}
		ct := Tuple{Key: c.t.Value, Payload: c.payload}
		switch c.t.Stream {
		case core.StreamR:
			if match(c.t.Value, s.Key) {
				out = append(out, Pair{Time: t, R: ct, S: s})
			}
		case core.StreamS:
			if match(c.t.Value, r.Key) {
				out = append(out, Pair{Time: t, R: r, S: ct})
			}
		}
	}
	if match(r.Key, s.Key) {
		out = append(out, Pair{Time: t, R: r, S: s, SameTime: true})
		j.m.SameTimePairs++
	}
	j.m.Pairs += len(out)

	// Admission + replacement, mirroring the simulator's candidate order.
	newEntries := []entry{
		{t: join.Tuple{ID: j.nextID, Value: r.Key, Stream: core.StreamR, Arrived: t}, payload: r.Payload},
		{t: join.Tuple{ID: j.nextID + 1, Value: s.Key, Stream: core.StreamS, Arrived: t}, payload: s.Payload},
	}
	j.nextID += 2
	cands := append(append(make([]entry, 0, len(j.cache)+2), j.cache...), newEntries...)
	need := len(cands) - j.cfg.CacheSize
	if need <= 0 {
		j.cache = cands
		j.record(start, len(out), 0)
		return out
	}
	tuples := make([]join.Tuple, len(cands))
	for i, c := range cands {
		tuples[i] = c.t
	}
	evict := j.policy.Evict(j.state, tuples, need)
	if len(evict) != need {
		panic(fmt.Sprintf("engine: policy %s returned %d evictions, need %d", j.policy.Name(), len(evict), need))
	}
	drop := make(map[int]bool, need)
	for _, i := range evict {
		if i < 0 || i >= len(cands) || drop[i] {
			panic(fmt.Sprintf("engine: policy %s returned invalid eviction %d", j.policy.Name(), i))
		}
		drop[i] = true
	}
	j.m.Evictions += need
	kept := j.cache[:0]
	for i, c := range cands {
		if !drop[i] {
			kept = append(kept, c)
		}
	}
	j.cache = kept
	j.record(start, len(out), need)
	return out
}

// record publishes one step's telemetry; a no-op without a registry.
func (j *Join) record(start time.Time, pairs, evictions int) {
	if j.stepLatency == nil {
		return
	}
	j.stepLatency.ObserveDuration(time.Since(start).Nanoseconds())
	j.stepCount.Inc()
	j.pairCount.Add(int64(pairs))
	j.evictCount.Add(int64(evictions))
}

// Metrics returns the operator's counters. CacheLen is recomputed from the
// live cache at snapshot time, so it is accurate on every path — including
// before the first step and on steps that admit without evicting.
func (j *Join) Metrics() Metrics {
	m := j.m
	m.CacheLen = len(j.cache)
	return m
}

// Snapshot returns the cached tuples (keys and streams) in cache order, for
// observability and tests.
func (j *Join) Snapshot() []join.Tuple {
	out := make([]join.Tuple, len(j.cache))
	for i, c := range j.cache {
		out[i] = c.t
	}
	return out
}

// Input is one synchronized step of arrivals for Run.
type Input struct {
	R, S Tuple
}

// Run drives the operator from a channel of step inputs until the channel
// closes or the context is cancelled, sending every result pair to the out
// channel. It owns the out channel and closes it on return.
func (j *Join) Run(ctx context.Context, in <-chan Input, out chan<- Pair) error {
	defer close(out)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case step, ok := <-in:
			if !ok {
				return nil
			}
			for _, p := range j.Step(step.R, step.S) {
				select {
				case out <- p:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
	}
}

// newDefaultHEEB builds the default model-driven policy: direct HEEB with α
// derived from the cache size (the paper's fallback choice).
func newDefaultHEEB() join.Policy {
	return policy.NewHEEB(policy.HEEBOptions{Mode: policy.HEEBDirect})
}

type randPolicy struct{ rng *stats.RNG }

func (p *randPolicy) Name() string                        { return "RAND" }
func (p *randPolicy) Reset(_ join.Config, rng *stats.RNG) { p.rng = rng }
func (p *randPolicy) Evict(_ *join.State, cands []join.Tuple, n int) []int {
	return p.rng.Perm(len(cands))[:n]
}
