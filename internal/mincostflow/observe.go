package mincostflow

import "sync/atomic"

// Solver names reported to the SolveObserver, one per solve entry point.
const (
	// SolverSSP is the successive-shortest-path solver behind
	// Graph.MinCostFlow / MinCostFlowBudget.
	SolverSSP = "ssp"
	// SolverCostScaling is the integer cost-scaling solver behind
	// IntGraph.MinCostFlow.
	SolverCostScaling = "cost-scaling"
)

// SolveObserver sees every solver attempt: Begin at entry, End at exit with
// the routed flow and the outcome (nil on success). Both callbacks run on
// the solving goroutine and must be cheap; the flight recorder installs one
// to record per-attempt child spans.
type SolveObserver struct {
	Begin func(solver string)
	End   func(solver string, flow int64, err error)
}

// solveObserver mirrors failureHook: a process-wide atomic pointer so the
// hot path pays one atomic load when no observer is installed.
var solveObserver atomic.Pointer[SolveObserver]

// SetSolveObserver installs (or, with nil, removes) the process-wide solve
// observer. Both callbacks must be non-nil on a non-nil observer.
func SetSolveObserver(o *SolveObserver) {
	if o != nil && (o.Begin == nil || o.End == nil) {
		panic("mincostflow: SolveObserver requires both Begin and End")
	}
	solveObserver.Store(o)
}
