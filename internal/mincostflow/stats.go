package mincostflow

import "sync/atomic"

// Stats aggregates solver work counters across all graphs in the process:
// how many solves ran, how many augmenting paths the SSP solver pushed, how
// many Dijkstra / Bellman–Ford passes it needed, and how much push/relabel
// work the cost-scaling solver did. The telemetry layer surfaces these as
// gauges so FlowExpect- and OPT-offline-heavy runs can attribute their time.
type Stats struct {
	Solves            int64 // Graph.MinCostFlow calls
	Augmentations     int64 // shortest augmenting paths pushed (SSP)
	DijkstraRuns      int64 // Dijkstra passes over reduced costs (SSP)
	BellmanFordRuns   int64 // Bellman–Ford initial-potential passes (SSP)
	CostScalingSolves int64 // IntGraph.MinCostFlow calls
	Relabels          int64 // price relabels (cost scaling)
	Pushes            int64 // admissible-arc pushes (cost scaling)
}

// Counters are package-level so a solve buried under policy → core call
// chains still gets counted; solvers accumulate locally and publish once per
// solve, so the hot loops stay atomic-free.
var statSolves, statAugmentations, statDijkstra, statBellmanFord,
	statCostScalingSolves, statRelabels, statPushes atomic.Int64

// ReadStats returns the current process-wide counters.
func ReadStats() Stats {
	return Stats{
		Solves:            statSolves.Load(),
		Augmentations:     statAugmentations.Load(),
		DijkstraRuns:      statDijkstra.Load(),
		BellmanFordRuns:   statBellmanFord.Load(),
		CostScalingSolves: statCostScalingSolves.Load(),
		Relabels:          statRelabels.Load(),
		Pushes:            statPushes.Load(),
	}
}

// ResetStats zeroes all counters (tests and fresh measurement windows).
func ResetStats() {
	statSolves.Store(0)
	statAugmentations.Store(0)
	statDijkstra.Store(0)
	statBellmanFord.Store(0)
	statCostScalingSolves.Store(0)
	statRelabels.Store(0)
	statPushes.Store(0)
}
