package mincostflow

import (
	"errors"
	"fmt"
)

// IntGraph is a flow network with integer costs, solved by the cost-scaling
// push-relabel algorithm of Goldberg [9] — the solver the paper builds
// OPT-offline and FlowExpect on. The general Graph type covers float costs
// with successive shortest paths; IntGraph exists both as a faithful
// implementation of the cited algorithm and as an independent
// cross-validation oracle (the two solvers must agree on integer-cost
// instances, which OPT-offline's unit-benefit graphs are).
type IntGraph struct {
	n     int
	heads [][]int32
	arcs  []intArc
}

type intArc struct {
	to   int32
	cap  int64 // residual capacity
	cost int64
}

// NewInt returns an empty integer-cost graph with n nodes.
func NewInt(n int) *IntGraph {
	if n <= 0 {
		panic("mincostflow: NewInt requires n > 0")
	}
	return &IntGraph{n: n, heads: make([][]int32, n)}
}

// AddArc adds a directed arc and returns its id.
func (g *IntGraph) AddArc(from, to int, capacity int64, cost int64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("mincostflow: arc endpoints (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	if capacity < 0 {
		panic("mincostflow: negative capacity")
	}
	id := len(g.arcs)
	g.arcs = append(g.arcs, intArc{to: int32(to), cap: capacity, cost: cost})
	g.arcs = append(g.arcs, intArc{to: int32(from), cap: 0, cost: -cost})
	g.heads[from] = append(g.heads[from], int32(id))
	g.heads[to] = append(g.heads[to], int32(id+1))
	return id / 2
}

// Flow returns the flow routed on the arc with the given id.
func (g *IntGraph) Flow(id int) int64 { return g.arcs[2*id+1].cap }

// IntResult reports a MinCostFlow outcome.
type IntResult struct {
	Flow int64
	Cost int64
}

// MinCostFlow routes up to target units from source to sink at minimum
// cost using cost scaling. It first finds a maximum flow (capped at target)
// with a BFS augmenting-path phase, then cancels negative-reduced-cost
// residual cycles by ε-scaling push-relabel until 1/n-optimality, which is
// exact for integer costs.
func (g *IntGraph) MinCostFlow(source, sink int, target int64) (IntResult, error) {
	obs := solveObserver.Load()
	if obs == nil {
		return g.minCostFlow(source, sink, target)
	}
	obs.Begin(SolverCostScaling)
	res, err := g.minCostFlow(source, sink, target)
	obs.End(SolverCostScaling, res.Flow, err)
	return res, err
}

func (g *IntGraph) minCostFlow(source, sink int, target int64) (IntResult, error) {
	if source == sink {
		return IntResult{}, errors.New("mincostflow: source equals sink")
	}
	if target <= 0 {
		return IntResult{}, nil
	}
	statCostScalingSolves.Add(1)
	flow := g.maxFlow(source, sink, target)
	if flow == 0 {
		return IntResult{}, ErrDisconnected
	}
	// To make the flow *of this value* min-cost rather than merely feasible,
	// add a high-gain return arc so cost scaling can also reroute through
	// source/sink without changing the net flow value, then cancel all
	// negative cycles in the residual graph.
	g.refineLoop()
	var cost int64
	for id := 0; id < len(g.arcs); id += 2 {
		cost += g.arcs[id+1].cap * g.arcs[id].cost
	}
	return IntResult{Flow: flow, Cost: cost}, nil
}

// maxFlow pushes up to target units with BFS augmenting paths
// (Edmonds–Karp), ignoring costs.
func (g *IntGraph) maxFlow(source, sink int, target int64) int64 {
	var total int64
	parent := make([]int32, g.n)
	for total < target {
		for i := range parent {
			parent[i] = -1
		}
		queue := []int32{int32(source)}
		parent[source] = -2
		found := false
	bfs:
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, a := range g.heads[v] {
				to := g.arcs[a].to
				if g.arcs[a].cap > 0 && parent[to] == -1 {
					parent[to] = a
					if int(to) == sink {
						found = true
						break bfs
					}
					queue = append(queue, to)
				}
			}
		}
		if !found {
			break
		}
		bottleneck := target - total
		for v := sink; v != source; {
			a := parent[v]
			if g.arcs[a].cap < bottleneck {
				bottleneck = g.arcs[a].cap
			}
			v = int(g.arcs[a^1].to)
		}
		for v := sink; v != source; {
			a := parent[v]
			g.arcs[a].cap -= bottleneck
			g.arcs[a^1].cap += bottleneck
			v = int(g.arcs[a^1].to)
		}
		total += bottleneck
	}
	return total
}

// refineLoop is the ε-scaling loop: costs are multiplied by n so that
// 1/n-optimality in the scaled costs implies exact optimality, and ε is
// divided by scaleFactor each round.
const scaleFactor = 8

func (g *IntGraph) refineLoop() {
	n := int64(g.n)
	var maxC int64
	for i := 0; i < len(g.arcs); i += 2 {
		c := g.arcs[i].cost
		if c < 0 {
			c = -c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return
	}
	price := make([]int64, g.n)
	eps := maxC * n
	var pushes, relabels int64
	defer func() {
		statPushes.Add(pushes)
		statRelabels.Add(relabels)
	}()
	for {
		g.refine(eps, price, n, &pushes, &relabels)
		if eps == 1 {
			// Scaled costs are multiples of n, so 1-optimality in them is
			// exact optimality in the original integer costs.
			break
		}
		eps /= scaleFactor
		if eps < 1 {
			eps = 1
		}
	}
}

// refine restores ε-optimality: saturate every residual arc with negative
// reduced cost, then discharge nodes with positive excess by pushing along
// admissible arcs and relabeling.
func (g *IntGraph) refine(eps int64, price []int64, n int64, pushes, relabels *int64) {
	scaledCost := func(a int32) int64 {
		return g.arcs[a].cost * n
	}
	reduced := func(a int32, from int32) int64 {
		return scaledCost(a) + price[from] - price[g.arcs[a].to]
	}
	excess := make([]int64, g.n)
	// Saturate all negative-reduced-cost residual arcs.
	for v := int32(0); v < int32(g.n); v++ {
		for _, a := range g.heads[v] {
			if g.arcs[a].cap > 0 && reduced(a, v) < 0 {
				amt := g.arcs[a].cap
				g.arcs[a].cap = 0
				g.arcs[a^1].cap += amt
				excess[v] -= amt
				excess[g.arcs[a].to] += amt
			}
		}
	}
	// Discharge active nodes FIFO.
	var queue []int32
	inQueue := make([]bool, g.n)
	for v := int32(0); v < int32(g.n); v++ {
		if excess[v] > 0 {
			queue = append(queue, v)
			inQueue[v] = true
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		for excess[v] > 0 {
			pushed := false
			for _, a := range g.heads[v] {
				if g.arcs[a].cap <= 0 || reduced(a, v) >= 0 {
					continue
				}
				amt := excess[v]
				if g.arcs[a].cap < amt {
					amt = g.arcs[a].cap
				}
				to := g.arcs[a].to
				g.arcs[a].cap -= amt
				g.arcs[a^1].cap += amt
				excess[v] -= amt
				excess[to] += amt
				if excess[to] > 0 && !inQueue[to] {
					queue = append(queue, to)
					inQueue[to] = true
				}
				pushed = true
				*pushes++
				if excess[v] == 0 {
					break
				}
			}
			if excess[v] == 0 {
				break
			}
			if !pushed {
				// Relabel: lower v's price just enough to create an
				// admissible arc.
				best := int64(1) << 62
				hasResidual := false
				for _, a := range g.heads[v] {
					if g.arcs[a].cap > 0 {
						hasResidual = true
						if rc := reduced(a, v); rc < best {
							best = rc
						}
					}
				}
				if !hasResidual {
					// No outlet: the excess is stranded (cannot happen for
					// feasible circulations; guard against infinite loops).
					break
				}
				price[v] -= best + eps
				*relabels++
			}
		}
	}
}
