package mincostflow

import (
	"errors"
	"testing"
)

// parallelPaths builds a graph whose max flow needs one augmentation per
// unit: source 0, sink n+1, and n disjoint two-arc paths of capacity 1.
func parallelPaths(n int) *Graph {
	g := New(n + 2)
	for i := 0; i < n; i++ {
		g.AddArc(0, 1+i, 1, float64(i))
		g.AddArc(1+i, n+1, 1, 0)
	}
	return g
}

func TestBudgetMaxAugmentations(t *testing.T) {
	g := parallelPaths(4)
	res, err := g.MinCostFlowBudget(0, 5, 4, Budget{MaxAugmentations: 2})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	// The partial result reflects the work done before the bound: the two
	// cheapest unit paths.
	if res.Flow != 2 || res.Cost != 1 {
		t.Fatalf("partial result = %+v, want flow 2 cost 1", res)
	}
}

func TestBudgetMaxAugmentationsSufficient(t *testing.T) {
	g := parallelPaths(3)
	res, err := g.MinCostFlowBudget(0, 4, 3, Budget{MaxAugmentations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 3 {
		t.Fatalf("flow = %d, want 3", res.Flow)
	}
}

// cyclicGraph has a positive-capacity cycle, so the initial potential pass
// must fall back from the topological order to Bellman–Ford.
func cyclicGraph() *Graph {
	g := New(4)
	g.AddArc(0, 1, 2, -1)
	g.AddArc(1, 2, 2, -1)
	g.AddArc(2, 1, 1, 2) // closes the cycle 1→2→1 (total cost +1: legal)
	g.AddArc(2, 3, 2, 0)
	return g
}

func TestBudgetMaxRelaxations(t *testing.T) {
	g := cyclicGraph()
	_, err := g.MinCostFlowBudget(0, 3, 2, Budget{MaxRelaxations: 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestBudgetedFailureIsDeterministic(t *testing.T) {
	run := func() (Result, string) {
		g := parallelPaths(5)
		res, err := g.MinCostFlowBudget(0, 6, 5, Budget{MaxAugmentations: 2})
		return res, err.Error()
	}
	r1, e1 := run()
	r2, e2 := run()
	if r1 != r2 || e1 != e2 {
		t.Fatalf("budgeted failure diverged across replays:\n  %+v %q\n  %+v %q", r1, e1, r2, e2)
	}
}

func TestNegativeCycleIsErrorNotPanic(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 1, 0)
	g.AddArc(1, 2, 1, -3)
	g.AddArc(2, 1, 1, 1) // cycle 1→2→1, total cost -2
	g.AddArc(2, 3, 1, 0)
	_, err := g.MinCostFlow(0, 3, 1)
	if !errors.Is(err, ErrNumericalInstability) {
		t.Fatalf("err = %v, want ErrNumericalInstability", err)
	}
}

func TestFailureHook(t *testing.T) {
	calls := 0
	SetFailureHook(func() bool { calls++; return calls == 1 })
	defer SetFailureHook(nil)

	g := parallelPaths(2)
	if _, err := g.MinCostFlow(0, 3, 2); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("err = %v, want ErrInjectedFailure", err)
	}
	// The hook declined the second solve; a fresh graph solves cleanly.
	g = parallelPaths(2)
	res, err := g.MinCostFlow(0, 3, 2)
	if err != nil || res.Flow != 2 {
		t.Fatalf("res = %+v err = %v, want flow 2", res, err)
	}
	if calls != 2 {
		t.Fatalf("hook consulted %d times, want once per solve (2)", calls)
	}

	// Uninstalling restores the unhooked path.
	SetFailureHook(nil)
	g = parallelPaths(1)
	if _, err := g.MinCostFlow(0, 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBudgetIsUnlimited(t *testing.T) {
	g := cyclicGraph()
	res, err := g.MinCostFlowBudget(0, 3, 2, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 {
		t.Fatalf("flow = %d, want 2", res.Flow)
	}
}
