package mincostflow

import (
	"math"
	"testing"
	"testing/quick"

	"stochstream/internal/stats"
)

func TestSingleArc(t *testing.T) {
	g := New(2)
	id := g.AddArc(0, 1, 3, 2.5)
	res, err := g.MinCostFlow(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || math.Abs(res.Cost-5) > 1e-12 {
		t.Fatalf("res = %+v, want flow 2 cost 5", res)
	}
	if g.Flow(id) != 2 {
		t.Fatalf("arc flow = %d, want 2", g.Flow(id))
	}
}

func TestTargetExceedsCapacity(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 3, 1)
	res, err := g.MinCostFlow(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 3 {
		t.Fatalf("flow = %d, want 3 (max)", res.Flow)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1, 1, 1)
	if _, err := g.MinCostFlow(0, 2, 1); err != ErrDisconnected {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestZeroTarget(t *testing.T) {
	g := New(2)
	g.AddArc(0, 1, 1, 1)
	res, err := g.MinCostFlow(0, 1, 0)
	if err != nil || res.Flow != 0 || res.Cost != 0 {
		t.Fatalf("res = %+v err = %v", res, err)
	}
}

func TestPrefersCheaperPath(t *testing.T) {
	//        1 --(cost 1)--> 3
	//  0 --<                  >-- but only via distinct middle nodes
	//        2 --(cost 5)--> 3
	g := New(4)
	g.AddArc(0, 1, 1, 0)
	g.AddArc(0, 2, 1, 0)
	cheap := g.AddArc(1, 3, 1, 1)
	dear := g.AddArc(2, 3, 1, 5)
	res, err := g.MinCostFlow(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 1 || g.Flow(cheap) != 1 || g.Flow(dear) != 0 {
		t.Fatalf("should use the cheap path: cost %v cheap %d dear %d", res.Cost, g.Flow(cheap), g.Flow(dear))
	}
	// Second unit has to take the expensive path.
	res2, err := g.MinCostFlow(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cost != 5 {
		t.Fatalf("second unit cost = %v, want 5", res2.Cost)
	}
}

func TestNegativeCosts(t *testing.T) {
	// A benefit-style graph: all costs negative, the solver must still find
	// the minimum (most negative) total.
	g := New(4)
	g.AddArc(0, 1, 1, 0)
	g.AddArc(0, 2, 1, 0)
	g.AddArc(1, 3, 1, -3)
	g.AddArc(2, 3, 1, -1)
	res, err := g.MinCostFlow(0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || math.Abs(res.Cost-(-4)) > 1e-12 {
		t.Fatalf("res = %+v, want flow 2 cost -4", res)
	}
}

func TestReroutingThroughResidualArcs(t *testing.T) {
	// Classic instance where the second augmentation must cancel flow on the
	// first path to be optimal.
	//
	//	0 -> 1 (cap 1, cost 1)     0 -> 2 (cap 1, cost 4)
	//	1 -> 2 (cap 1, cost 1)     1 -> 3 (cap 1, cost 5)
	//	2 -> 3 (cap 1, cost 1)
	//
	// One unit: 0-1-2-3 at cost 3. Two units: 0-1-3 (6) + 0-2-3 (5) = 11,
	// found only by pushing back along 1->2 or by SSP's potentials.
	g := New(4)
	g.AddArc(0, 1, 1, 1)
	g.AddArc(0, 2, 1, 4)
	g.AddArc(1, 2, 1, 1)
	g.AddArc(1, 3, 1, 5)
	g.AddArc(2, 3, 1, 1)
	res, err := g.MinCostFlow(0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || math.Abs(res.Cost-11) > 1e-12 {
		t.Fatalf("res = %+v, want flow 2 cost 11", res)
	}
}

func TestBellmanFordFallbackOnCyclicGraph(t *testing.T) {
	// A graph with a (positive-cost) cycle exercises the non-DAG
	// initialization path.
	g := New(4)
	g.AddArc(0, 1, 2, 1)
	g.AddArc(1, 2, 2, 1)
	g.AddArc(2, 1, 2, 1) // cycle 1<->2
	g.AddArc(2, 3, 2, 1)
	res, err := g.MinCostFlow(0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || math.Abs(res.Cost-6) > 1e-12 {
		t.Fatalf("res = %+v, want flow 2 cost 6", res)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	g := New(2)
	mustPanic(t, "negative capacity", func() { g.AddArc(0, 1, -1, 0) })
	mustPanic(t, "bad endpoint", func() { g.AddArc(0, 5, 1, 0) })
	mustPanic(t, "zero nodes", func() { New(0) })
	if _, err := g.MinCostFlow(0, 0, 1); err == nil {
		t.Fatal("source == sink should error")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	f()
}

func TestPathsDecomposition(t *testing.T) {
	g := New(6)
	g.AddArc(0, 1, 1, 0)
	g.AddArc(0, 2, 1, 0)
	g.AddArc(1, 3, 1, 1)
	g.AddArc(2, 4, 1, 1)
	g.AddArc(3, 5, 1, 0)
	g.AddArc(4, 5, 1, 0)
	res, err := g.MinCostFlow(0, 5, 2)
	if err != nil || res.Flow != 2 {
		t.Fatalf("res = %+v err = %v", res, err)
	}
	paths := g.Paths(0, 5)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 5 || len(p) != 4 {
			t.Fatalf("bad path %v", p)
		}
	}
}

// assignmentBrute solves the n×n assignment problem by permutation
// enumeration; the flow solver must match it exactly.
func assignmentBrute(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	used := make([]bool, n)
	best := math.Inf(1)
	var rec func(i int, acc float64)
	// No branch-and-bound pruning: costs may be negative, so a partial sum
	// above the incumbent can still lead to a better completion.
	rec = func(i int, acc float64) {
		if i == n {
			if acc < best {
				best = acc
			}
			return
		}
		for j := 0; j < n; j++ {
			if !used[j] {
				used[j] = true
				perm[i] = j
				rec(i+1, acc+cost[i][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func solveAssignment(cost [][]float64) float64 {
	n := len(cost)
	// Nodes: 0 = source, 1..n = workers, n+1..2n = jobs, 2n+1 = sink.
	g := New(2*n + 2)
	src, snk := 0, 2*n+1
	for i := 0; i < n; i++ {
		g.AddArc(src, 1+i, 1, 0)
		g.AddArc(1+n+i, snk, 1, 0)
		for j := 0; j < n; j++ {
			g.AddArc(1+i, 1+n+j, 1, cost[i][j])
		}
	}
	res, err := g.MinCostFlow(src, snk, n)
	if err != nil || res.Flow != n {
		panic("assignment infeasible")
	}
	return res.Cost
}

func TestAssignmentMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				// Mix of positive and negative costs.
				cost[i][j] = math.Round((rng.Float64()*20-10)*4) / 4
			}
		}
		want := assignmentBrute(cost)
		got := solveAssignment(cost)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d): flow %v != brute %v", trial, n, got, want)
		}
	}
}

// Property: cost is monotone in flow increments on random layered DAGs —
// each successive augmentation is at least as expensive per unit as the
// previous (convexity of min-cost flow).
func TestQuickSuccessiveAugmentationCostsNondecreasing(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		layers := 3
		width := 2 + rng.IntN(3)
		n := 2 + layers*width
		g := New(n)
		src, snk := 0, n-1
		node := func(l, i int) int { return 1 + l*width + i }
		for i := 0; i < width; i++ {
			g.AddArc(src, node(0, i), 1, 0)
			g.AddArc(node(layers-1, i), snk, 1, 0)
		}
		for l := 0; l+1 < layers; l++ {
			for i := 0; i < width; i++ {
				for j := 0; j < width; j++ {
					g.AddArc(node(l, i), node(l+1, j), 1, rng.Float64()*10-5)
				}
			}
		}
		prev := math.Inf(-1)
		for u := 0; u < width; u++ {
			res, err := g.MinCostFlow(src, snk, 1)
			if err != nil {
				break
			}
			if res.Cost < prev-1e-9 {
				return false
			}
			prev = res.Cost
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Incremental (one unit at a time) and batch solves must agree in total cost.
func TestIncrementalMatchesBatch(t *testing.T) {
	build := func() *Graph {
		g := New(6)
		g.AddArc(0, 1, 2, 1)
		g.AddArc(0, 2, 2, 2)
		g.AddArc(1, 3, 1, -4)
		g.AddArc(1, 4, 2, 3)
		g.AddArc(2, 3, 1, 0)
		g.AddArc(2, 4, 1, -1)
		g.AddArc(3, 5, 2, 0)
		g.AddArc(4, 5, 2, 1)
		return g
	}
	batch := build()
	resBatch, err := batch.MinCostFlow(0, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	inc := build()
	var total float64
	var units int
	for i := 0; i < 3; i++ {
		r, err := inc.MinCostFlow(0, 5, 1)
		if err != nil {
			break
		}
		total += r.Cost
		units += r.Flow
	}
	if units != resBatch.Flow || math.Abs(total-resBatch.Cost) > 1e-9 {
		t.Fatalf("incremental (%d, %v) != batch (%d, %v)", units, total, resBatch.Flow, resBatch.Cost)
	}
}
