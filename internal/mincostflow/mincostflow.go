// Package mincostflow implements a min-cost max-flow solver used by the
// FlowExpect and OPT-offline algorithms. The paper uses Goldberg's
// cost-scaling solver; the graphs both algorithms build here are layered
// DAGs of modest size, for which successive shortest paths with node
// potentials is exact and fast, so that is what this package provides
// (see DESIGN.md for the substitution note).
//
// Costs are float64 (FlowExpect's arcs carry negated expected benefits);
// capacities and flows are integers, so every optimal solution found is an
// integral flow — the property Section 3.2 of the paper relies on.
package mincostflow

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Graph is a directed flow network. Nodes are dense integers [0, N).
type Graph struct {
	n     int
	heads [][]int32 // per-node arc indices into arcs (forward and residual)
	arcs  []arc
}

type arc struct {
	to   int32
	cap  int32 // residual capacity
	cost float64
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	if n <= 0 {
		panic("mincostflow: New requires n > 0")
	}
	return &Graph{n: n, heads: make([][]int32, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumArcs returns the number of forward arcs added.
func (g *Graph) NumArcs() int { return len(g.arcs) / 2 }

// AddArc adds a directed arc with the given capacity and per-unit cost and
// returns its id. Negative capacities are rejected; negative costs are
// allowed (FlowExpect's benefits are negated costs).
func (g *Graph) AddArc(from, to int, capacity int, cost float64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("mincostflow: arc endpoints (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	if capacity < 0 {
		panic("mincostflow: negative capacity")
	}
	id := len(g.arcs)
	g.arcs = append(g.arcs, arc{to: int32(to), cap: int32(capacity), cost: cost})
	g.arcs = append(g.arcs, arc{to: int32(from), cap: 0, cost: -cost})
	g.heads[from] = append(g.heads[from], int32(id))
	g.heads[to] = append(g.heads[to], int32(id+1))
	return id / 2
}

// Flow returns the flow currently routed on the arc with the given id.
func (g *Graph) Flow(id int) int { return int(g.arcs[2*id+1].cap) }

// Result reports the outcome of a MinCostFlow call.
type Result struct {
	Flow int     // units actually routed (≤ the requested target)
	Cost float64 // total cost of the routed flow
}

// ErrDisconnected is returned when no unit of flow can reach the sink.
var ErrDisconnected = errors.New("mincostflow: sink unreachable from source")

// ErrNumericalInstability is returned when the solver's invariants are broken
// by the arc costs themselves — a negative-cost cycle surfacing during the
// initial potential pass, or a residual arc whose reduced cost is negative
// beyond floating-point slack. Degenerate FlowExpect instances (NaN/Inf
// benefits, corrupted model parameters) land here instead of panicking; the
// graph may hold a partial flow and must be discarded by the caller.
var ErrNumericalInstability = errors.New("mincostflow: numerical instability")

// ErrBudgetExceeded is returned when a Budget bound was hit before the
// requested flow was routed. The budget is deterministic — it counts solver
// work (augmentations, relaxations), never wall-clock time — so a budgeted
// solve fails identically on every replay of the same instance.
var ErrBudgetExceeded = errors.New("mincostflow: solver budget exceeded")

// ErrInjectedFailure is returned when the test failure hook forces a solve to
// fail (fault-injection harnesses; never set in production).
var ErrInjectedFailure = errors.New("mincostflow: injected solver failure")

// Budget bounds the work one MinCostFlowBudget call may do. Zero fields mean
// unlimited (beyond the built-in negative-cycle guard). Counting solver
// iterations instead of time keeps budgeted solves deterministic, as the
// engine's replay and checkpoint guarantees require.
type Budget struct {
	// MaxAugmentations caps the number of augmenting paths pushed.
	MaxAugmentations int64
	// MaxRelaxations caps edge relaxations in the Bellman–Ford initial
	// potential pass (the topological pass is linear and never bounded).
	MaxRelaxations int64
}

// failureHook, when non-nil, is consulted at the top of every solve; a true
// return fails the solve with ErrInjectedFailure. It exists for the
// fault-injection harness and is deterministic as long as the installed hook
// is (internal/faultinject installs seeded, call-counting hooks).
var failureHook atomic.Pointer[func() bool]

// SetFailureHook installs (or, with nil, removes) the process-wide solver
// failure hook. Test harnesses only.
func SetFailureHook(f func() bool) {
	if f == nil {
		failureHook.Store(nil)
		return
	}
	failureHook.Store(&f)
}

// MinCostFlow routes up to target units of flow from source to sink at
// minimum total cost, mutating the graph's residual capacities. It returns
// the units routed and their cost. If fewer than target units fit, the
// result carries the maximum flow; if no unit fits at all, ErrDisconnected
// is returned.
//
// The solver runs successive shortest paths with node potentials: an initial
// potential pass that tolerates negative arc costs (topological relaxation
// when the positive-capacity subgraph is a DAG, Bellman–Ford otherwise),
// then Dijkstra on reduced costs for each augmentation.
func (g *Graph) MinCostFlow(source, sink, target int) (Result, error) {
	return g.MinCostFlowBudget(source, sink, target, Budget{})
}

// MinCostFlowBudget is MinCostFlow under a deterministic work budget. When a
// bound is hit the routed (partial) flow is reported alongside
// ErrBudgetExceeded; the graph's residual state reflects the partial flow and
// should be discarded.
func (g *Graph) MinCostFlowBudget(source, sink, target int, budget Budget) (Result, error) {
	obs := solveObserver.Load()
	if obs == nil {
		return g.minCostFlowBudget(source, sink, target, budget)
	}
	obs.Begin(SolverSSP)
	res, err := g.minCostFlowBudget(source, sink, target, budget)
	obs.End(SolverSSP, int64(res.Flow), err)
	return res, err
}

func (g *Graph) minCostFlowBudget(source, sink, target int, budget Budget) (Result, error) {
	if source == sink {
		return Result{}, errors.New("mincostflow: source equals sink")
	}
	if target <= 0 {
		return Result{}, nil
	}
	if hook := failureHook.Load(); hook != nil && (*hook)() {
		return Result{}, ErrInjectedFailure
	}
	pot, err := g.initialPotentials(source, budget)
	if err != nil {
		return Result{}, err
	}
	var res Result
	var dijkstraRuns, augmentations int64
	distTo := make([]float64, g.n)
	parentArc := make([]int32, g.n)
	for res.Flow < target {
		if budget.MaxAugmentations > 0 && augmentations >= budget.MaxAugmentations {
			statSolves.Add(1)
			statDijkstra.Add(dijkstraRuns)
			statAugmentations.Add(augmentations)
			return res, fmt.Errorf("%w: %d augmentations routed %d/%d units", ErrBudgetExceeded, augmentations, res.Flow, target)
		}
		dijkstraRuns++
		reached, err := g.dijkstra(source, sink, pot, distTo, parentArc)
		if err != nil {
			statSolves.Add(1)
			statDijkstra.Add(dijkstraRuns)
			statAugmentations.Add(augmentations)
			return res, err
		}
		if !reached {
			break
		}
		augmentations++
		// Bottleneck along the shortest path, capped by remaining demand.
		bottleneck := int32(target - res.Flow)
		for v := sink; v != source; {
			a := parentArc[v]
			if g.arcs[a].cap < bottleneck {
				bottleneck = g.arcs[a].cap
			}
			v = int(g.arcs[a^1].to)
		}
		for v := sink; v != source; {
			a := parentArc[v]
			g.arcs[a].cap -= bottleneck
			g.arcs[a^1].cap += bottleneck
			res.Cost += float64(bottleneck) * g.arcs[a].cost
			v = int(g.arcs[a^1].to)
		}
		res.Flow += int(bottleneck)
		for v := 0; v < g.n; v++ {
			if distTo[v] < math.Inf(1) {
				pot[v] += distTo[v]
			}
		}
	}
	statSolves.Add(1)
	statDijkstra.Add(dijkstraRuns)
	statAugmentations.Add(augmentations)
	if res.Flow == 0 {
		return res, ErrDisconnected
	}
	return res, nil
}

// initialPotentials computes shortest-path distances from source over
// positive-capacity arcs, tolerating negative costs. Nodes unreachable from
// the source get potential 0 (they can never be on an augmenting path).
func (g *Graph) initialPotentials(source int, budget Budget) ([]float64, error) {
	if order, ok := g.topoOrder(); ok {
		return g.dagPotentials(source, order), nil
	}
	return g.bellmanFord(source, budget)
}

// topoOrder returns a topological order of the positive-capacity subgraph,
// or ok=false if it has a cycle.
func (g *Graph) topoOrder() ([]int32, bool) {
	indeg := make([]int32, g.n)
	for i := 0; i < len(g.arcs); i++ {
		if g.arcs[i].cap > 0 {
			indeg[g.arcs[i].to]++
		}
	}
	order := make([]int32, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			order = append(order, int32(v))
		}
	}
	for i := 0; i < len(order); i++ {
		v := order[i]
		for _, a := range g.heads[v] {
			if g.arcs[a].cap > 0 {
				to := g.arcs[a].to
				indeg[to]--
				if indeg[to] == 0 {
					order = append(order, to)
				}
			}
		}
	}
	return order, len(order) == g.n
}

func (g *Graph) dagPotentials(source int, order []int32) []float64 {
	d := make([]float64, g.n)
	for i := range d {
		d[i] = math.Inf(1)
	}
	d[source] = 0
	for _, v := range order {
		if math.IsInf(d[v], 1) {
			continue
		}
		for _, a := range g.heads[v] {
			if g.arcs[a].cap > 0 {
				if nd := d[v] + g.arcs[a].cost; nd < d[g.arcs[a].to] {
					d[g.arcs[a].to] = nd
				}
			}
		}
	}
	for i := range d {
		if math.IsInf(d[i], 1) {
			d[i] = 0
		}
	}
	return d
}

func (g *Graph) bellmanFord(source int, budget Budget) ([]float64, error) {
	statBellmanFord.Add(1)
	d := make([]float64, g.n)
	for i := range d {
		d[i] = math.Inf(1)
	}
	d[source] = 0
	inQueue := make([]bool, g.n)
	queue := []int32{int32(source)}
	inQueue[source] = true
	var relaxations int64
	maxRelax := int64(g.n) * int64(len(g.arcs)) // negative-cycle guard
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		for _, a := range g.heads[v] {
			if g.arcs[a].cap <= 0 {
				continue
			}
			to := g.arcs[a].to
			if nd := d[v] + g.arcs[a].cost; nd < d[to]-1e-15 {
				d[to] = nd
				relaxations++
				if budget.MaxRelaxations > 0 && relaxations > budget.MaxRelaxations {
					return nil, fmt.Errorf("%w: %d Bellman–Ford relaxations", ErrBudgetExceeded, relaxations)
				}
				if relaxations > maxRelax {
					return nil, fmt.Errorf("%w: negative-cost cycle detected after %d relaxations", ErrNumericalInstability, relaxations)
				}
				if !inQueue[to] {
					queue = append(queue, to)
					inQueue[to] = true
				}
			}
		}
	}
	for i := range d {
		if math.IsInf(d[i], 1) {
			d[i] = 0
		}
	}
	return d, nil
}

// dijkstra finds shortest paths on reduced costs, filling distTo and
// parentArc; it reports whether the sink is reachable. A residual arc with a
// truly negative reduced cost (beyond floating-point slack) breaks the
// algorithm's invariant and is reported as ErrNumericalInstability.
func (g *Graph) dijkstra(source, sink int, pot, distTo []float64, parentArc []int32) (bool, error) {
	for i := range distTo {
		distTo[i] = math.Inf(1)
		parentArc[i] = -1
	}
	distTo[source] = 0
	pq := &nodeHeap{items: []heapItem{{node: int32(source), dist: 0}}}
	done := make([]bool, g.n)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, a := range g.heads[v] {
			if g.arcs[a].cap <= 0 {
				continue
			}
			to := g.arcs[a].to
			if done[to] {
				continue
			}
			rc := g.arcs[a].cost + pot[v] - pot[to]
			if rc < 0 || math.IsNaN(rc) {
				// Floating-point slack only; true negatives (or NaN costs from
				// corrupted benefits) would break Dijkstra's invariant.
				if rc < -1e-6 || math.IsNaN(rc) {
					return false, fmt.Errorf("%w: reduced cost %g on arc %d", ErrNumericalInstability, rc, a)
				}
				rc = 0
			}
			if nd := distTo[v] + rc; nd < distTo[to] {
				distTo[to] = nd
				parentArc[to] = a
				heap.Push(pq, heapItem{node: to, dist: nd})
			}
		}
	}
	return distTo[sink] < math.Inf(1), nil
}

type heapItem struct {
	node int32
	dist float64
}

type nodeHeap struct{ items []heapItem }

func (h *nodeHeap) Len() int           { return len(h.items) }
func (h *nodeHeap) Less(i, j int) bool { return h.items[i].dist < h.items[j].dist }
func (h *nodeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *nodeHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Paths decomposes the current integral flow into arc-disjoint source→sink
// paths of one unit each and returns them as node sequences. FlowExpect's
// tests use it to recover the cache-trace interpretation of Section 3.1.
func (g *Graph) Paths(source, sink int) [][]int {
	// Remaining flow on each forward arc.
	rem := make([]int32, len(g.arcs)/2)
	for id := range rem {
		rem[id] = g.arcs[2*id+1].cap
	}
	var paths [][]int
	for {
		path := []int{source}
		v := source
		for v != sink {
			advanced := false
			for _, a := range g.heads[v] {
				if a%2 == 0 && rem[a/2] > 0 {
					rem[a/2]--
					v = int(g.arcs[a].to)
					path = append(path, v)
					advanced = true
					break
				}
			}
			if !advanced {
				return paths // no more complete unit paths
			}
		}
		paths = append(paths, path)
	}
}
