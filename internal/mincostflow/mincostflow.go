// Package mincostflow implements a min-cost max-flow solver used by the
// FlowExpect and OPT-offline algorithms. The paper uses Goldberg's
// cost-scaling solver; the graphs both algorithms build here are layered
// DAGs of modest size, for which successive shortest paths with node
// potentials is exact and fast, so that is what this package provides
// (see DESIGN.md for the substitution note).
//
// Costs are float64 (FlowExpect's arcs carry negated expected benefits);
// capacities and flows are integers, so every optimal solution found is an
// integral flow — the property Section 3.2 of the paper relies on.
package mincostflow

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Graph is a directed flow network. Nodes are dense integers [0, N).
type Graph struct {
	n     int
	heads [][]int32 // per-node arc indices into arcs (forward and residual)
	arcs  []arc
}

type arc struct {
	to   int32
	cap  int32 // residual capacity
	cost float64
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	if n <= 0 {
		panic("mincostflow: New requires n > 0")
	}
	return &Graph{n: n, heads: make([][]int32, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumArcs returns the number of forward arcs added.
func (g *Graph) NumArcs() int { return len(g.arcs) / 2 }

// AddArc adds a directed arc with the given capacity and per-unit cost and
// returns its id. Negative capacities are rejected; negative costs are
// allowed (FlowExpect's benefits are negated costs).
func (g *Graph) AddArc(from, to int, capacity int, cost float64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("mincostflow: arc endpoints (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	if capacity < 0 {
		panic("mincostflow: negative capacity")
	}
	id := len(g.arcs)
	g.arcs = append(g.arcs, arc{to: int32(to), cap: int32(capacity), cost: cost})
	g.arcs = append(g.arcs, arc{to: int32(from), cap: 0, cost: -cost})
	g.heads[from] = append(g.heads[from], int32(id))
	g.heads[to] = append(g.heads[to], int32(id+1))
	return id / 2
}

// Flow returns the flow currently routed on the arc with the given id.
func (g *Graph) Flow(id int) int { return int(g.arcs[2*id+1].cap) }

// Result reports the outcome of a MinCostFlow call.
type Result struct {
	Flow int     // units actually routed (≤ the requested target)
	Cost float64 // total cost of the routed flow
}

// ErrDisconnected is returned when no unit of flow can reach the sink.
var ErrDisconnected = errors.New("mincostflow: sink unreachable from source")

// MinCostFlow routes up to target units of flow from source to sink at
// minimum total cost, mutating the graph's residual capacities. It returns
// the units routed and their cost. If fewer than target units fit, the
// result carries the maximum flow; if no unit fits at all, ErrDisconnected
// is returned.
//
// The solver runs successive shortest paths with node potentials: an initial
// potential pass that tolerates negative arc costs (topological relaxation
// when the positive-capacity subgraph is a DAG, Bellman–Ford otherwise),
// then Dijkstra on reduced costs for each augmentation.
func (g *Graph) MinCostFlow(source, sink, target int) (Result, error) {
	if source == sink {
		return Result{}, errors.New("mincostflow: source equals sink")
	}
	if target <= 0 {
		return Result{}, nil
	}
	pot := g.initialPotentials(source)
	var res Result
	var dijkstraRuns, augmentations int64
	distTo := make([]float64, g.n)
	parentArc := make([]int32, g.n)
	for res.Flow < target {
		dijkstraRuns++
		if !g.dijkstra(source, sink, pot, distTo, parentArc) {
			break
		}
		augmentations++
		// Bottleneck along the shortest path, capped by remaining demand.
		bottleneck := int32(target - res.Flow)
		for v := sink; v != source; {
			a := parentArc[v]
			if g.arcs[a].cap < bottleneck {
				bottleneck = g.arcs[a].cap
			}
			v = int(g.arcs[a^1].to)
		}
		for v := sink; v != source; {
			a := parentArc[v]
			g.arcs[a].cap -= bottleneck
			g.arcs[a^1].cap += bottleneck
			res.Cost += float64(bottleneck) * g.arcs[a].cost
			v = int(g.arcs[a^1].to)
		}
		res.Flow += int(bottleneck)
		for v := 0; v < g.n; v++ {
			if distTo[v] < math.Inf(1) {
				pot[v] += distTo[v]
			}
		}
	}
	statSolves.Add(1)
	statDijkstra.Add(dijkstraRuns)
	statAugmentations.Add(augmentations)
	if res.Flow == 0 {
		return res, ErrDisconnected
	}
	return res, nil
}

// initialPotentials computes shortest-path distances from source over
// positive-capacity arcs, tolerating negative costs. Nodes unreachable from
// the source get potential 0 (they can never be on an augmenting path).
func (g *Graph) initialPotentials(source int) []float64 {
	if order, ok := g.topoOrder(); ok {
		return g.dagPotentials(source, order)
	}
	return g.bellmanFord(source)
}

// topoOrder returns a topological order of the positive-capacity subgraph,
// or ok=false if it has a cycle.
func (g *Graph) topoOrder() ([]int32, bool) {
	indeg := make([]int32, g.n)
	for i := 0; i < len(g.arcs); i++ {
		if g.arcs[i].cap > 0 {
			indeg[g.arcs[i].to]++
		}
	}
	order := make([]int32, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			order = append(order, int32(v))
		}
	}
	for i := 0; i < len(order); i++ {
		v := order[i]
		for _, a := range g.heads[v] {
			if g.arcs[a].cap > 0 {
				to := g.arcs[a].to
				indeg[to]--
				if indeg[to] == 0 {
					order = append(order, to)
				}
			}
		}
	}
	return order, len(order) == g.n
}

func (g *Graph) dagPotentials(source int, order []int32) []float64 {
	d := make([]float64, g.n)
	for i := range d {
		d[i] = math.Inf(1)
	}
	d[source] = 0
	for _, v := range order {
		if math.IsInf(d[v], 1) {
			continue
		}
		for _, a := range g.heads[v] {
			if g.arcs[a].cap > 0 {
				if nd := d[v] + g.arcs[a].cost; nd < d[g.arcs[a].to] {
					d[g.arcs[a].to] = nd
				}
			}
		}
	}
	for i := range d {
		if math.IsInf(d[i], 1) {
			d[i] = 0
		}
	}
	return d
}

func (g *Graph) bellmanFord(source int) []float64 {
	statBellmanFord.Add(1)
	d := make([]float64, g.n)
	for i := range d {
		d[i] = math.Inf(1)
	}
	d[source] = 0
	inQueue := make([]bool, g.n)
	queue := []int32{int32(source)}
	inQueue[source] = true
	relaxations := 0
	maxRelax := g.n * len(g.arcs) // negative-cycle guard
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		for _, a := range g.heads[v] {
			if g.arcs[a].cap <= 0 {
				continue
			}
			to := g.arcs[a].to
			if nd := d[v] + g.arcs[a].cost; nd < d[to]-1e-15 {
				d[to] = nd
				relaxations++
				if relaxations > maxRelax {
					panic("mincostflow: negative-cost cycle detected")
				}
				if !inQueue[to] {
					queue = append(queue, to)
					inQueue[to] = true
				}
			}
		}
	}
	for i := range d {
		if math.IsInf(d[i], 1) {
			d[i] = 0
		}
	}
	return d
}

// dijkstra finds shortest paths on reduced costs, filling distTo and
// parentArc; it reports whether the sink is reachable.
func (g *Graph) dijkstra(source, sink int, pot, distTo []float64, parentArc []int32) bool {
	for i := range distTo {
		distTo[i] = math.Inf(1)
		parentArc[i] = -1
	}
	distTo[source] = 0
	pq := &nodeHeap{items: []heapItem{{node: int32(source), dist: 0}}}
	done := make([]bool, g.n)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, a := range g.heads[v] {
			if g.arcs[a].cap <= 0 {
				continue
			}
			to := g.arcs[a].to
			if done[to] {
				continue
			}
			rc := g.arcs[a].cost + pot[v] - pot[to]
			if rc < 0 {
				// Floating-point slack only; true negatives would break
				// Dijkstra's invariant.
				if rc < -1e-6 {
					panic(fmt.Sprintf("mincostflow: negative reduced cost %g", rc))
				}
				rc = 0
			}
			if nd := distTo[v] + rc; nd < distTo[to] {
				distTo[to] = nd
				parentArc[to] = a
				heap.Push(pq, heapItem{node: to, dist: nd})
			}
		}
	}
	return distTo[sink] < math.Inf(1)
}

type heapItem struct {
	node int32
	dist float64
}

type nodeHeap struct{ items []heapItem }

func (h *nodeHeap) Len() int           { return len(h.items) }
func (h *nodeHeap) Less(i, j int) bool { return h.items[i].dist < h.items[j].dist }
func (h *nodeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *nodeHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Paths decomposes the current integral flow into arc-disjoint source→sink
// paths of one unit each and returns them as node sequences. FlowExpect's
// tests use it to recover the cache-trace interpretation of Section 3.1.
func (g *Graph) Paths(source, sink int) [][]int {
	// Remaining flow on each forward arc.
	rem := make([]int32, len(g.arcs)/2)
	for id := range rem {
		rem[id] = g.arcs[2*id+1].cap
	}
	var paths [][]int
	for {
		path := []int{source}
		v := source
		for v != sink {
			advanced := false
			for _, a := range g.heads[v] {
				if a%2 == 0 && rem[a/2] > 0 {
					rem[a/2]--
					v = int(g.arcs[a].to)
					path = append(path, v)
					advanced = true
					break
				}
			}
			if !advanced {
				return paths // no more complete unit paths
			}
		}
		paths = append(paths, path)
	}
}
