package mincostflow

import (
	"math"
	"testing"
	"testing/quick"

	"stochstream/internal/stats"
)

func TestIntGraphSingleArc(t *testing.T) {
	g := NewInt(2)
	id := g.AddArc(0, 1, 3, 2)
	res, err := g.MinCostFlow(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || res.Cost != 4 {
		t.Fatalf("res = %+v", res)
	}
	if g.Flow(id) != 2 {
		t.Fatalf("flow = %d", g.Flow(id))
	}
}

func TestIntGraphDisconnectedAndDegenerate(t *testing.T) {
	g := NewInt(3)
	g.AddArc(0, 1, 1, 1)
	if _, err := g.MinCostFlow(0, 2, 1); err != ErrDisconnected {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.MinCostFlow(0, 0, 1); err == nil {
		t.Fatal("source == sink should error")
	}
	if res, err := g.MinCostFlow(0, 1, 0); err != nil || res.Flow != 0 {
		t.Fatalf("target 0: %+v %v", res, err)
	}
	mustPanic(t, "NewInt(0)", func() { NewInt(0) })
	mustPanic(t, "neg cap", func() { g.AddArc(0, 1, -1, 0) })
	mustPanic(t, "bad endpoint", func() { g.AddArc(0, 9, 1, 0) })
}

func TestIntGraphReroutesForOptimality(t *testing.T) {
	// Same instance as TestReroutingThroughResidualArcs: the cheap greedy
	// path must be partially undone to route two units at cost 11.
	g := NewInt(4)
	g.AddArc(0, 1, 1, 1)
	g.AddArc(0, 2, 1, 4)
	g.AddArc(1, 2, 1, 1)
	g.AddArc(1, 3, 1, 5)
	g.AddArc(2, 3, 1, 1)
	res, err := g.MinCostFlow(0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || res.Cost != 11 {
		t.Fatalf("res = %+v, want flow 2 cost 11", res)
	}
}

func TestIntGraphNegativeCosts(t *testing.T) {
	g := NewInt(4)
	g.AddArc(0, 1, 1, 0)
	g.AddArc(0, 2, 1, 0)
	g.AddArc(1, 3, 1, -3)
	g.AddArc(2, 3, 1, -1)
	res, err := g.MinCostFlow(0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || res.Cost != -4 {
		t.Fatalf("res = %+v", res)
	}
	// A single unit must pick the -3 path even though max-flow alone could
	// have chosen either.
	g2 := NewInt(4)
	g2.AddArc(0, 1, 1, 0)
	g2.AddArc(0, 2, 1, 0)
	g2.AddArc(1, 3, 1, -3)
	g2.AddArc(2, 3, 1, -1)
	res2, err := g2.MinCostFlow(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cost != -3 {
		t.Fatalf("single unit cost = %d, want -3", res2.Cost)
	}
}

// Cross-validation: cost scaling and successive shortest paths must agree on
// random integer-cost layered networks.
func TestQuickCostScalingMatchesSSP(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		layers := 2 + rng.IntN(3)
		width := 2 + rng.IntN(3)
		n := 2 + layers*width
		gInt := NewInt(n)
		gFlt := New(n)
		src, snk := 0, n-1
		node := func(l, i int) int { return 1 + l*width + i }
		addBoth := func(a, b, cap, cost int) {
			gInt.AddArc(a, b, int64(cap), int64(cost))
			gFlt.AddArc(a, b, cap, float64(cost))
		}
		for i := 0; i < width; i++ {
			addBoth(src, node(0, i), 1+rng.IntN(3), 0)
			addBoth(node(layers-1, i), snk, 1+rng.IntN(3), 0)
		}
		for l := 0; l+1 < layers; l++ {
			for i := 0; i < width; i++ {
				for j := 0; j < width; j++ {
					addBoth(node(l, i), node(l+1, j), 1+rng.IntN(2), rng.IntN(21)-10)
				}
			}
		}
		target := 1 + rng.IntN(4)
		ri, errI := gInt.MinCostFlow(src, snk, int64(target))
		rf, errF := gFlt.MinCostFlow(src, snk, target)
		if (errI == nil) != (errF == nil) {
			return false
		}
		if errI != nil {
			return true
		}
		return ri.Flow == int64(rf.Flow) && math.Abs(float64(ri.Cost)-rf.Cost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Assignment problems: cost scaling vs brute force.
func TestIntAssignmentMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(123)
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.IntN(4)
		cost := make([][]float64, n)
		intCost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			intCost[i] = make([]int64, n)
			for j := range cost[i] {
				c := rng.IntN(41) - 20
				cost[i][j] = float64(c)
				intCost[i][j] = int64(c)
			}
		}
		want := assignmentBrute(cost)
		g := NewInt(2*n + 2)
		src, snk := 0, 2*n+1
		for i := 0; i < n; i++ {
			g.AddArc(src, 1+i, 1, 0)
			g.AddArc(1+n+i, snk, 1, 0)
			for j := 0; j < n; j++ {
				g.AddArc(1+i, 1+n+j, 1, intCost[i][j])
			}
		}
		res, err := g.MinCostFlow(src, snk, int64(n))
		if err != nil || res.Flow != int64(n) {
			t.Fatalf("trial %d: %+v %v", trial, res, err)
		}
		if float64(res.Cost) != want {
			t.Fatalf("trial %d: cost scaling %d != brute %v", trial, res.Cost, want)
		}
	}
}
