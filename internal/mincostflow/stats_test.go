package mincostflow

import "testing"

// The stats counters are process-wide, so this test serializes with the rest
// of the package (Go runs same-package tests sequentially by default).
func TestStatsCountSolverWork(t *testing.T) {
	ResetStats()
	if s := ReadStats(); s != (Stats{}) {
		t.Fatalf("reset left %+v", s)
	}

	// One SSP solve: two unit paths from 0 to 2.
	g := New(3)
	g.AddArc(0, 1, 2, 1)
	g.AddArc(1, 2, 2, 1)
	g.AddArc(0, 2, 1, 5)
	if _, err := g.MinCostFlow(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	s := ReadStats()
	if s.Solves != 1 {
		t.Fatalf("solves = %d, want 1", s.Solves)
	}
	if s.Augmentations < 2 {
		t.Fatalf("augmentations = %d, want >= 2 (two distinct paths)", s.Augmentations)
	}
	if s.DijkstraRuns < s.Augmentations {
		t.Fatalf("dijkstra runs %d < augmentations %d", s.DijkstraRuns, s.Augmentations)
	}
	if s.CostScalingSolves != 0 {
		t.Fatalf("cost-scaling counted %d without a solve", s.CostScalingSolves)
	}

	// One cost-scaling solve on the integer graph.
	ig := NewInt(3)
	ig.AddArc(0, 1, 2, 1)
	ig.AddArc(1, 2, 2, 1)
	if _, err := ig.MinCostFlow(0, 2, 2); err != nil {
		t.Fatal(err)
	}
	s2 := ReadStats()
	if s2.CostScalingSolves != 1 {
		t.Fatalf("cost-scaling solves = %d, want 1", s2.CostScalingSolves)
	}
	if s2.Pushes == 0 {
		t.Fatal("cost-scaling solve recorded no pushes")
	}
	if s2.Solves != 1 {
		t.Fatalf("SSP solves changed to %d", s2.Solves)
	}

	ResetStats()
	if s := ReadStats(); s != (Stats{}) {
		t.Fatalf("second reset left %+v", s)
	}
}
