package policy

import (
	"errors"
	"fmt"

	"stochstream/internal/core"
	"stochstream/internal/join"
	"stochstream/internal/mincostflow"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// FlowExpect is the online min-cost-flow algorithm of Section 3: at every
// replacement decision it builds the flow graph over the next Lookahead
// steps with expected arc benefits and follows the flow's decision for the
// current time only. It is exact over predetermined replacement sequences
// but not optimal overall (Section 3.4), and far more expensive than HEEB —
// the paper keeps its experiments small for this reason.
type FlowExpect struct {
	// Lookahead is the parameter l of Section 3.1 (default 10).
	Lookahead int
	// SolverBudget caps the min-cost-flow augmentations per decision (0 =
	// unlimited). The bound is deterministic — it counts solver iterations,
	// not wall-clock time — so a budgeted run replays identically. When the
	// budget trips, TryEvict reports ErrSolverBudget for the caller (usually
	// a Ladder) to degrade on.
	SolverBudget int64

	cfg join.Config
	// fc is the per-decision forecast memo shared between the flow-graph
	// construction and ScoreCandidates; its capacity is reused across
	// decisions.
	fc *core.ForecastCache
}

// Name implements join.Policy.
func (p *FlowExpect) Name() string { return "FLOWEXPECT" }

// Reset implements join.Policy.
func (p *FlowExpect) Reset(cfg join.Config, _ *stats.RNG) {
	if p.Lookahead == 0 {
		p.Lookahead = 10
	}
	if p.Lookahead < 1 {
		panic("policy: FlowExpect lookahead must be >= 1")
	}
	if cfg.Procs[0] == nil || cfg.Procs[1] == nil {
		panic("policy: FlowExpect requires stream models")
	}
	p.cfg = cfg
	p.fc = core.NewForecastCache(cfg.Procs, [2]*process.History{})
}

// bindDecision rebinds the forecast memo to the current decision.
func (p *FlowExpect) bindDecision(st *join.State) *core.ForecastCache {
	if p.fc == nil {
		//lint:ignore scorepure lazy construction of the blessed forecast memo: built from stream state alone, so the first decision replays identically
		p.fc = core.NewForecastCache(st.Procs(), st.Hists)
	}
	p.fc.Rebind(st.Procs(), st.Hists)
	return p.fc
}

// Evict implements join.Policy. A solver failure is a panic here — callers
// that want graceful degradation use TryEvict (via a Ladder) instead.
func (p *FlowExpect) Evict(st *join.State, cands []join.Tuple, n int) []int {
	out, err := p.TryEvict(st, cands, n)
	if err != nil {
		panic(fmt.Sprintf("policy: FlowExpect step failed: %v", err))
	}
	return out
}

// TryEvict implements Fallible: the flow solve runs under SolverBudget, and
// failures come back as taxonomy errors (ErrSolverBudget on budget
// exhaustion, ErrSolverFailed on numerical instability, disconnection or an
// injected fault) instead of panics.
func (p *FlowExpect) TryEvict(st *join.State, cands []join.Tuple, n int) ([]int, error) {
	cs := make([]core.Candidate, len(cands))
	for i, c := range cands {
		cs[i] = core.Candidate{Value: c.Value, Stream: c.Stream, Age: st.Time - c.Arrived}
	}
	budget := mincostflow.Budget{MaxAugmentations: p.SolverBudget}
	dec, err := core.FlowExpectStepBudget(cs, p.bindDecision(st), len(cands)-n, p.Lookahead, p.cfg.Window, budget)
	if err != nil {
		if errors.Is(err, mincostflow.ErrBudgetExceeded) {
			return nil, fmt.Errorf("%w: %v", ErrSolverBudget, err)
		}
		return nil, fmt.Errorf("%w: %v", ErrSolverFailed, err)
	}
	keep := make(map[int]bool, len(dec.Keep))
	for _, i := range dec.Keep {
		keep[i] = true
	}
	out := make([]int, 0, n)
	for i := range cands {
		if !keep[i] {
			out = append(out, i)
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("%w: flow kept %d of %d candidates, need %d evictions", ErrSolverFailed, len(dec.Keep), len(cands), n)
	}
	return out, nil
}

// ScoreCandidates returns each candidate's total expected arc benefit over
// the look-ahead window: the sum over offsets 1..l of the probability that
// the partner's arrival matches it (zeroed once the tuple ages past the
// window), i.e. the benefit the Section 3.1 graph assigns to the path that
// keeps the tuple for the whole horizon. These are the numbers on the
// candidate's horizontal arcs; the telemetry decision trace records them
// (telemetry.CandidateScorer). The flow's actual choice can differ — it
// weighs candidates jointly against undetermined future arrivals — which is
// exactly the discrepancy worth seeing in a trace.
func (p *FlowExpect) ScoreCandidates(st *join.State, cands []join.Tuple) []float64 {
	fc := p.bindDecision(st)
	scores := make([]float64, len(cands))
	for i, c := range cands {
		partner := c.Stream.Partner()
		age := st.Time - c.Arrived
		for off := 1; off <= p.Lookahead; off++ {
			if p.cfg.Window > 0 && age+off > p.cfg.Window {
				break
			}
			scores[i] += fc.At(partner, off).Prob(c.Value)
		}
	}
	return scores
}
