package policy

import (
	"fmt"

	"stochstream/internal/core"
	"stochstream/internal/join"
	"stochstream/internal/stats"
)

// FlowExpect is the online min-cost-flow algorithm of Section 3: at every
// replacement decision it builds the flow graph over the next Lookahead
// steps with expected arc benefits and follows the flow's decision for the
// current time only. It is exact over predetermined replacement sequences
// but not optimal overall (Section 3.4), and far more expensive than HEEB —
// the paper keeps its experiments small for this reason.
type FlowExpect struct {
	// Lookahead is the parameter l of Section 3.1 (default 10).
	Lookahead int

	cfg join.Config
}

// Name implements join.Policy.
func (p *FlowExpect) Name() string { return "FLOWEXPECT" }

// Reset implements join.Policy.
func (p *FlowExpect) Reset(cfg join.Config, _ *stats.RNG) {
	if p.Lookahead == 0 {
		p.Lookahead = 10
	}
	if p.Lookahead < 1 {
		panic("policy: FlowExpect lookahead must be >= 1")
	}
	if cfg.Procs[0] == nil || cfg.Procs[1] == nil {
		panic("policy: FlowExpect requires stream models")
	}
	p.cfg = cfg
}

// Evict implements join.Policy.
func (p *FlowExpect) Evict(st *join.State, cands []join.Tuple, n int) []int {
	cs := make([]core.Candidate, len(cands))
	for i, c := range cands {
		cs[i] = core.Candidate{Value: c.Value, Stream: c.Stream, Age: st.Time - c.Arrived}
	}
	dec, err := core.FlowExpectStepWindow(cs, st.Procs(), st.Hists, len(cands)-n, p.Lookahead, p.cfg.Window)
	if err != nil {
		panic(fmt.Sprintf("policy: FlowExpect step failed: %v", err))
	}
	keep := make(map[int]bool, len(dec.Keep))
	for _, i := range dec.Keep {
		keep[i] = true
	}
	out := make([]int, 0, n)
	for i := range cands {
		if !keep[i] {
			out = append(out, i)
		}
	}
	return out
}
