package policy

import (
	"errors"
	"fmt"
	"math"

	"stochstream/internal/join"
)

// The degradation-ladder error taxonomy. A policy that cannot produce a
// trustworthy decision reports one of these instead of panicking, so a single
// degenerate instance (a NaN model parameter, a pathological flow graph)
// downgrades one decision instead of killing the operator. The engine
// re-exports them as engine.ErrModelDiverged etc.
var (
	// ErrModelDiverged marks a decision whose candidate scores were not
	// finite — the stream model produced NaN/Inf benefit estimates.
	ErrModelDiverged = errors.New("policy: model diverged: non-finite candidate score")
	// ErrSolverBudget marks a FlowExpect decision abandoned because the
	// min-cost-flow solve exceeded its deterministic iteration budget.
	ErrSolverBudget = errors.New("policy: solver budget exhausted")
	// ErrSolverFailed marks a FlowExpect decision whose solve failed outright
	// (numerical instability, disconnected graph, injected fault).
	ErrSolverFailed = errors.New("policy: solver failed")
	// ErrInvalidEviction marks a rung that returned a malformed eviction set
	// (wrong count, out-of-range or duplicate indices).
	ErrInvalidEviction = errors.New("policy: invalid eviction set")
)

// Fallible is implemented by policies that can report a failed replacement
// decision instead of panicking. TryEvict has Evict's contract — exactly n
// in-range, distinct indices — but returns an error from the taxonomy above
// when the decision cannot be trusted; the caller (typically a Ladder) then
// degrades to a simpler policy for this decision only. A nil error guarantees
// a valid eviction set.
type Fallible interface {
	TryEvict(st *join.State, cands []join.Tuple, n int) ([]int, error)
}

// firstNonFinite returns the index of the first NaN/Inf score, or -1 when all
// scores are finite.
func firstNonFinite(scores []float64) int {
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return i
		}
	}
	return -1
}

// checkEviction validates an eviction set against Evict's contract without
// panicking; scratch is a reusable seen-buffer (grown as needed) so ladder
// validation stays allocation-free at steady state.
func checkEviction(evict []int, nCands, need int, scratch []bool) ([]bool, error) {
	if len(evict) != need {
		return scratch, fmt.Errorf("%w: returned %d evictions, need %d", ErrInvalidEviction, len(evict), need)
	}
	if cap(scratch) < nCands {
		scratch = make([]bool, nCands)
	}
	scratch = scratch[:nCands]
	for i := range scratch {
		scratch[i] = false
	}
	for _, i := range evict {
		if i < 0 || i >= nCands {
			return scratch, fmt.Errorf("%w: index %d out of range [0,%d)", ErrInvalidEviction, i, nCands)
		}
		if scratch[i] {
			return scratch, fmt.Errorf("%w: duplicate index %d", ErrInvalidEviction, i)
		}
		scratch[i] = true
	}
	return scratch, nil
}
