package policy

import (
	"testing"

	"stochstream/internal/core"
	"stochstream/internal/dist"
	"stochstream/internal/join"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func TestBandJoinEndToEnd(t *testing.T) {
	// Trending streams on disjoint parities (R even, S odd): an equijoin can
	// never match, a band join with eps=4 matches constantly.
	r := &process.LinearTrend{Slope: 2, Intercept: 0, Noise: dist.NewPointMass(0)}
	s := &process.LinearTrend{Slope: 2, Intercept: 3, Noise: dist.NewTable(-2, []float64{1, 0, 1, 0, 1})}
	rng := stats.NewRNG(1)
	rv := r.Generate(rng.Split(), 600)
	sv := s.Generate(rng.Split(), 600)
	procs := [2]process.Process{r, s}

	equi := join.Config{CacheSize: 4, Warmup: 0, Procs: procs}
	band := equi
	band.Band = 4
	heq := join.Run(rv, sv, NewHEEB(HEEBOptions{LifetimeEstimate: 4}), equi, stats.NewRNG(2))
	hband := join.Run(rv, sv, NewHEEB(HEEBOptions{LifetimeEstimate: 4}), band, stats.NewRNG(2))
	if heq.Joins > 0 {
		t.Fatalf("equijoin produced %d joins on offset streams", heq.Joins)
	}
	if hband.Joins == 0 {
		t.Fatal("band join produced no results")
	}
	// OPT for the band instance bounds HEEB.
	opt := core.OptOfflineBandJoin(rv, sv, band.CacheSize, band.Band, 0)
	if hband.Joins > opt.Total {
		t.Fatalf("HEEB %d above band OPT %d", hband.Joins, opt.Total)
	}
}

func TestBandHEEBBeatsRandOnNoisyBand(t *testing.T) {
	w := [2]process.Process{
		&process.LinearTrend{Slope: 1, Intercept: -1, Noise: dist.BoundedNormal(2, 12)},
		&process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(3, 12)},
	}
	rng := stats.NewRNG(9)
	rv := w[0].Generate(rng.Split(), 1500)
	sv := w[1].Generate(rng.Split(), 1500)
	cfg := join.Config{CacheSize: 6, Warmup: -1, Procs: w, Band: 2}
	heeb := join.Run(rv, sv, NewHEEB(HEEBOptions{LifetimeEstimate: 5}), cfg, stats.NewRNG(3))
	rnd := join.Run(rv, sv, &Rand{}, cfg, stats.NewRNG(3))
	if heeb.Joins <= rnd.Joins {
		t.Fatalf("band HEEB %d <= RAND %d", heeb.Joins, rnd.Joins)
	}
}

func TestBandIncrementalMatchesDirect(t *testing.T) {
	procs := [2]process.Process{
		&process.LinearTrend{Slope: 1, Intercept: -1, Noise: dist.BoundedNormal(1, 10)},
		&process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(2, 15)},
	}
	rng := stats.NewRNG(77)
	rv := procs[0].Generate(rng.Split(), 400)
	sv := procs[1].Generate(rng.Split(), 400)
	cfg := join.Config{CacheSize: 6, Warmup: -1, Procs: procs, Band: 2}
	direct := join.Run(rv, sv, NewHEEB(HEEBOptions{Mode: HEEBDirect, LifetimeEstimate: 3}), cfg, stats.NewRNG(1))
	incr := join.Run(rv, sv, NewHEEB(HEEBOptions{Mode: HEEBIncremental, LifetimeEstimate: 3}), cfg, stats.NewRNG(1))
	if direct.TotalJoins != incr.TotalJoins {
		t.Fatalf("band direct %d != incremental %d", direct.TotalJoins, incr.TotalJoins)
	}
}

func TestBandPROBSumsOverBand(t *testing.T) {
	p := &Prob{}
	st := &join.State{
		Time: 4,
		Hists: [2]*process.History{
			process.NewHistory(10, 11, 12, 20, 21), // R history
			process.NewHistory(0, 0, 0, 0, 0),
		},
		Config: join.Config{CacheSize: 2, Band: 1},
	}
	p.Reset(st.Config, stats.NewRNG(1))
	// S tuple with value 11: band {10,11,12} covers 3/5 of R history.
	// S tuple with value 20: band {19,20,21} covers 2/5.
	cands := []join.Tuple{
		{ID: 0, Value: 11, Stream: core.StreamS},
		{ID: 1, Value: 20, Stream: core.StreamS},
	}
	got := p.Evict(st, cands, 1)
	if got[0] != 1 {
		t.Fatalf("PROB evicted %d, want the narrower-band tuple (1)", got[0])
	}
}
