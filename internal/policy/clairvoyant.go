package policy

import (
	"stochstream/internal/core"
	"stochstream/internal/join"
	"stochstream/internal/stats"
)

// Clairvoyant replays the offline optimum's cache schedule as an online
// policy: it keeps exactly the tuples whose OPT-offline hold interval covers
// the current time and discards everything else. Running it through the
// simulator realizes the flow solution tuple for tuple, which both validates
// that the compressed formulation corresponds to an executable cache trace
// (Theorem 2's correspondence, executed) and provides a policy-shaped OPT
// for harnesses that only speak join.Policy.
type Clairvoyant struct {
	// R and S are the full streams the schedule was computed for; Reset
	// recomputes the optimum for the run's cache size/window/band.
	R, S []int

	// hold[stream] maps arrival time → scheduled release time.
	hold [2]map[int]int
	// Result is the offline optimum computed at Reset.
	Result core.OptOfflineResult
}

// Name implements join.Policy.
func (p *Clairvoyant) Name() string { return "OPT-OFFLINE" }

// EagerEvict implements join.EagerEvictor: unscheduled tuples are discarded
// immediately, even while the cache has room, exactly as the schedule says.
func (p *Clairvoyant) EagerEvict() {}

// Reset implements join.Policy.
func (p *Clairvoyant) Reset(cfg join.Config, _ *stats.RNG) {
	if p.R == nil || p.S == nil {
		panic("policy: Clairvoyant requires the full streams")
	}
	p.Result = core.OptOfflineBandJoin(p.R, p.S, cfg.CacheSize, cfg.Band, cfg.Window)
	p.hold = [2]map[int]int{{}, {}}
	for _, h := range p.Result.Schedule {
		p.hold[h.Stream][h.Arrived] = h.Until
	}
}

// Evict implements join.Policy: discard every candidate not scheduled to
// remain cached past the current step.
func (p *Clairvoyant) Evict(st *join.State, cands []join.Tuple, n int) []int {
	var evict []int
	for i, c := range cands {
		until, scheduled := p.hold[c.Stream][c.Arrived]
		// A tuple is kept only while its next scheduled match is still
		// ahead; at the step of its final match it has collected everything
		// and is released.
		if !scheduled || until <= st.Time {
			evict = append(evict, i)
		}
	}
	// The schedule never holds more than the cache size, so the eviction
	// set always covers the required count; assert cheaply.
	if len(evict) < n {
		panic("policy: Clairvoyant schedule overflows the cache")
	}
	return evict
}
