package policy

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"stochstream/internal/core"
	"stochstream/internal/dist"
	"stochstream/internal/join"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// HEEBMode selects how the HEEB policy computes its scores (Section 4.4's
// implementation techniques).
type HEEBMode int

// HEEB scoring modes.
const (
	// HEEBDirect recomputes H_x from the model at every decision.
	HEEBDirect HEEBMode = iota
	// HEEBIncremental maintains per-tuple H values with the Corollary 3
	// time-incremental update (independent streams, Lexp only); new
	// arrivals are scored directly.
	HEEBIncremental
	// HEEBPrecomputedH1 scores through a precomputed h1 curve (Theorem
	// 5(2)); both streams must be φ1 = 1 normal forecasters (random walks).
	HEEBPrecomputedH1
	// HEEBPrecomputedH2 scores through a precomputed h2 surface (Theorem
	// 5(1)); both streams must be AR(1) normal forecasters.
	HEEBPrecomputedH2
	// HEEBValueIncremental exploits Corollary 5 for linear-trend streams:
	// the score of a tuple with value v at time t depends only on the
	// offset v − slope·t, so scores are computed once per distinct offset
	// and reused forever. Falls back to direct scoring when a partner
	// stream is not a LinearTrend or when a window/band is active.
	HEEBValueIncremental
)

// String implements fmt.Stringer.
func (m HEEBMode) String() string {
	switch m {
	case HEEBDirect:
		return "direct"
	case HEEBIncremental:
		return "incremental"
	case HEEBPrecomputedH1:
		return "h1"
	case HEEBPrecomputedH2:
		return "h2"
	case HEEBValueIncremental:
		return "value-incremental"
	}
	return fmt.Sprintf("HEEBMode(%d)", int(m))
}

// HEEBOptions configures the HEEB policy.
type HEEBOptions struct {
	// Mode selects the scoring implementation. Default: HEEBDirect.
	Mode HEEBMode
	// Alpha is Lexp's α. When zero it is derived from LifetimeEstimate.
	Alpha float64
	// LifetimeEstimate is the a-priori mean cached-tuple lifetime used to
	// derive α when Alpha is zero. When it is also zero, the cache size is
	// used (the paper's choice for WALK and REAL).
	LifetimeEstimate float64
	// Adaptive re-derives α from the observed mean tuple lifetime (the
	// adaptive-α technique the paper lists as future work). It applies to
	// HEEBDirect only.
	Adaptive bool
	// AdaptiveDecay is the lifetime tracker's smoothing factor (default
	// 0.05).
	AdaptiveDecay float64
	// FallbackHorizon bounds the HEEB sum when L does not decay (default
	// 1000).
	FallbackHorizon int
	// ControlPoints is the per-axis control grid size for HEEBPrecomputedH2
	// (default 5 — the paper's 25 control points).
	ControlPoints int
	// DominancePrefilter first discards a dominated subset identified via
	// Corollary 2 and only scores the remainder. Optimal decisions are then
	// guaranteed for the prefiltered tuples; the ablation benchmarks
	// measure its cost.
	DominancePrefilter bool
	// PrefilterHorizon is the tabulation horizon for prefilter ECBs
	// (default 64).
	PrefilterHorizon int
	// Parallel enables the opt-in worker-pool scoring path: when a decision
	// has at least ParallelThreshold candidates (and the mode is HEEBDirect,
	// whose scoring is side-effect free once the decision's forecasts are
	// prewarmed), candidates are scored by up to ParallelWorkers goroutines.
	// Each worker writes a disjoint range of the shared score slice, so the
	// merged result — and therefore every eviction choice — is deterministic
	// and identical to serial scoring.
	Parallel bool
	// ParallelThreshold is the candidate count below which scoring stays
	// serial even with Parallel set (default 64): goroutine fan-out only pays
	// for itself on large caches.
	ParallelThreshold int
	// ParallelWorkers caps the scoring goroutines (default GOMAXPROCS).
	ParallelWorkers int
	// NoMemo disables the per-decision forecast cache and the tabulated
	// L-value table, restoring the seed implementation's re-derivation of
	// both per candidate. Scores are bitwise-identical either way (the memo
	// layers reuse the exact values the direct path computes); the switch
	// exists so the differential harness and BENCH_hotpath.json can measure
	// the memoization against the original hot path.
	NoMemo bool
}

// HEEB is the paper's heuristic of estimated expected benefit as a
// replacement policy: it scores every candidate with H_x and discards the
// lowest.
type HEEB struct {
	Opts HEEBOptions

	cfg     join.Config
	alpha   float64
	tracker *stats.LifetimeTracker
	// incremental state: per-tuple H and its last update time.
	inc map[int]*heebEntry
	// value-incremental state: offset (v − slope·t) → H, per stream.
	offsetH [2]map[int]float64
	// precomputed forms, indexed by the stream whose model they tabulate
	// (a tuple is scored against its partner's model).
	h1 [2]*core.H1 //lint:ignore snapcomplete derived from the stream models, built lazily on first score; identical after restore because the models are config
	h2 [2]*core.H2 //lint:ignore snapcomplete derived from the stream models, built lazily on first score; identical after restore because the models are config
	// fc is the per-decision forecast memo shared by all candidates of one
	// Evict/ScoreCandidates call; nil when Opts.NoMemo.
	fc *core.ForecastCache //lint:ignore snapcomplete per-decision memo, rebuilt for every Evict/ScoreCandidates call
	// ltab caches Lexp's e^{−Δt/α} values for the current α; ltabAlpha
	// tracks which α the table was built for (adaptive runs re-derive α).
	ltab      core.LTable //lint:ignore snapcomplete lookup table re-derived from α on demand by ensureLTab
	ltabAlpha float64     //lint:ignore snapcomplete lookup table re-derived from α on demand by ensureLTab
	// scoreBuf is the reused per-decision score slice.
	scoreBuf []float64 //lint:ignore snapcomplete per-decision score scratch, overwritten by every evict
}

type heebEntry struct {
	h    float64
	last int
}

// NewHEEB returns a HEEB policy with the given options.
func NewHEEB(opts HEEBOptions) *HEEB {
	if opts.FallbackHorizon == 0 {
		opts.FallbackHorizon = 1000
	}
	if opts.ControlPoints == 0 {
		opts.ControlPoints = 5
	}
	if opts.AdaptiveDecay == 0 {
		opts.AdaptiveDecay = 0.05
	}
	if opts.PrefilterHorizon == 0 {
		opts.PrefilterHorizon = 64
	}
	return &HEEB{Opts: opts}
}

// Name implements join.Policy.
func (p *HEEB) Name() string { return "HEEB" }

// Reset implements join.Policy.
func (p *HEEB) Reset(cfg join.Config, _ *stats.RNG) {
	p.cfg = cfg
	p.alpha = p.Opts.Alpha
	if p.alpha == 0 {
		est := p.Opts.LifetimeEstimate
		if est == 0 {
			est = float64(cfg.CacheSize)
		}
		p.alpha = stats.AlphaForLifetime(est)
	}
	p.tracker = stats.NewLifetimeTracker(p.Opts.AdaptiveDecay)
	p.inc = make(map[int]*heebEntry)
	p.offsetH = [2]map[int]float64{{}, {}}
	p.h1 = [2]*core.H1{}
	p.h2 = [2]*core.H2{}
	p.fc = nil
	p.ltabAlpha = 0
	if !p.Opts.NoMemo {
		p.fc = core.NewForecastCache(cfg.Procs, [2]*process.History{})
		p.ensureLTab()
	}
	switch p.Opts.Mode {
	case HEEBPrecomputedH1:
		for s := 0; s < 2; s++ {
			p.h1[s] = p.buildH1(cfg, s)
		}
	case HEEBPrecomputedH2:
		for s := 0; s < 2; s++ {
			p.h2[s] = p.buildH2(cfg, s)
		}
	}
}

func (p *HEEB) lexp() core.LFunc { return core.LExp{Alpha: p.alpha} }

// l returns the survival estimate used for scoring: the tabulated Lexp
// (value-for-value identical, without the per-Δt math.Exp) unless memoization
// is disabled.
func (p *HEEB) l() core.LFunc {
	if p.Opts.NoMemo {
		return p.lexp()
	}
	return p.ltab
}

// ensureLTab (re)tabulates the L table when α changed (Reset, or an adaptive
// re-derivation at the head of Evict).
func (p *HEEB) ensureLTab() {
	//lint:ignore floateq memo-key check: alpha is stored verbatim, so bitwise equality is the invalidation contract
	if p.Opts.NoMemo || p.ltabAlpha == p.alpha {
		return
	}
	p.ltab = core.TabulateL(core.LExp{Alpha: p.alpha}, p.Opts.FallbackHorizon) //lint:ignore scorepure deterministic α-keyed tabulation memo: the same α always yields the same table, so replay is unaffected
	p.ltabAlpha = p.alpha                                                      //lint:ignore scorepure memo key for the α-keyed tabulation above
}

// bindDecision points the per-decision memo layers at the current state.
func (p *HEEB) bindDecision(st *join.State) {
	p.ensureLTab()
	if p.fc != nil {
		p.fc.Rebind(st.Procs(), st.Hists)
	}
}

// tupleL wraps the survival estimate with the sliding window clip when
// windows are active.
func (p *HEEB) tupleL(now int, tp join.Tuple) core.LFunc {
	l := p.l()
	if p.cfg.Window > 0 {
		l = core.LWindow{Inner: l, Remaining: tp.Arrived + p.cfg.Window - now}
	}
	return l
}

func (p *HEEB) buildH1(cfg join.Config, stream int) *core.H1 {
	nf, ok := cfg.Procs[stream].(process.NormalForecaster)
	if !ok {
		panic(fmt.Sprintf("policy: HEEB h1 mode requires a NormalForecaster for stream %d", stream))
	}
	sigma, drift := walkParams(cfg.Procs[stream])
	r := int(math.Ceil(6*sigma*math.Sqrt(3*p.alpha))) + 5
	lo := -r + min(0, int(3*drift*p.alpha))
	hi := r + max(0, int(3*drift*p.alpha))
	h1, err := core.PrecomputeH1(nf, p.lexp(), lo, hi, 1, p.Opts.FallbackHorizon)
	if err != nil {
		panic(fmt.Sprintf("policy: HEEB h1 precomputation failed: %v", err))
	}
	return h1
}

func (p *HEEB) buildH2(cfg join.Config, stream int) *core.H2 {
	ar, ok := cfg.Procs[stream].(*process.AR1)
	if !ok {
		panic(fmt.Sprintf("policy: HEEB h2 mode requires an AR1 model for stream %d", stream))
	}
	mean := ar.Phi0 / (1 - ar.Phi1)
	sd := ar.Sigma / math.Sqrt(1-ar.Phi1*ar.Phi1)
	lo := int(mean - 4*sd)
	hi := int(mean + 4*sd)
	n := p.Opts.ControlPoints
	h2, err := core.PrecomputeH2(ar, p.lexp(), lo, hi, lo, hi, n, n, p.Opts.FallbackHorizon)
	if err != nil {
		panic(fmt.Sprintf("policy: HEEB h2 precomputation failed: %v", err))
	}
	return h2
}

// walkParams extracts (sigma, drift) from a random-walk-like process.
func walkParams(pr process.Process) (sigma, drift float64) {
	switch w := pr.(type) {
	case *process.GaussianWalk:
		return w.Sigma, w.Drift
	case *process.AR1:
		return w.Sigma, w.Phi0
	default:
		return 1, 0
	}
}

// Evict implements join.Policy.
func (p *HEEB) Evict(st *join.State, cands []join.Tuple, n int) []int {
	evict, _ := p.evict(st, cands, n, false)
	return evict
}

// TryEvict implements Fallible: identical decisions to Evict, except that
// non-finite candidate scores (a NaN model parameter, an overflowed benefit
// sum) are reported as ErrModelDiverged instead of silently producing a
// garbage ordering. The finite check is only paid on the TryEvict path, so
// the bare hot path is unchanged.
func (p *HEEB) TryEvict(st *join.State, cands []join.Tuple, n int) ([]int, error) {
	return p.evict(st, cands, n, true)
}

func (p *HEEB) evict(st *join.State, cands []join.Tuple, n int, checked bool) ([]int, error) {
	if p.Opts.Adaptive && p.tracker.N() > 0 {
		p.alpha = p.tracker.Alpha(p.Opts.LifetimeEstimate)
	}
	p.bindDecision(st)

	var evict []int
	if p.Opts.DominancePrefilter {
		var err error
		evict, err = p.evictPrefiltered(st, cands, n, checked)
		if err != nil {
			return nil, err
		}
	} else {
		// The common path scores every candidate in place: no remaining-set
		// map, no live-subset copies — the candidate indices are the
		// positions evictLowest already works with.
		p.scoreBuf = p.scoreAll(st, cands, p.scoreBuf[:0])
		if checked {
			if i := firstNonFinite(p.scoreBuf); i >= 0 {
				return nil, fmt.Errorf("%w: candidate %d (value %d) scored %g", ErrModelDiverged, i, cands[i].Value, p.scoreBuf[i])
			}
		}
		evict = evictLowest(p.scoreBuf, cands, n)
	}

	// Track observed lifetimes for adaptive α.
	for _, i := range evict {
		p.tracker.Observe(cands[i].Arrived, st.Time)
		delete(p.inc, cands[i].ID)
	}
	return evict, nil
}

// evictPrefiltered is the Corollary 2 path: discard a dominated subset
// first, then score only the remainder. With checked set, non-finite scores
// of the surviving candidates fail the decision as ErrModelDiverged.
func (p *HEEB) evictPrefiltered(st *join.State, cands []join.Tuple, n int, checked bool) ([]int, error) {
	evict := make([]int, 0, n)
	remaining := make(map[int]bool, len(cands))
	for i := range cands {
		remaining[i] = true
	}
	ecbs := make([]core.ECB, len(cands))
	for i, c := range cands {
		partner := c.Stream.Partner()
		var b core.ECB
		if p.fc != nil {
			b = core.BandJoinECBCached(p.fc, partner, c.Value, p.cfg.Band, p.Opts.PrefilterHorizon)
		} else {
			b = core.BandJoinECB(st.Procs()[partner], st.Hists[partner], c.Value, p.cfg.Band, p.Opts.PrefilterHorizon)
		}
		if p.cfg.Window > 0 {
			b = core.WindowECB(b, c.Arrived, st.Time, p.cfg.Window)
		}
		ecbs[i] = b
	}
	for _, i := range core.DominatedSubset(ecbs, n) {
		evict = append(evict, i)
		delete(remaining, i)
	}
	if len(evict) < n {
		live := make([]join.Tuple, 0, len(remaining))
		liveIdx := make([]int, 0, len(remaining))
		for i := range cands {
			if remaining[i] {
				live = append(live, cands[i])
				liveIdx = append(liveIdx, i)
			}
		}
		liveScores := p.scoreAll(st, live, nil)
		if checked {
			if i := firstNonFinite(liveScores); i >= 0 {
				return nil, fmt.Errorf("%w: candidate %d (value %d) scored %g", ErrModelDiverged, liveIdx[i], live[i].Value, liveScores[i])
			}
		}
		for _, j := range evictLowest(liveScores, live, n-len(evict)) {
			evict = append(evict, liveIdx[j])
		}
	}
	return evict, nil
}

// scoreAll scores every candidate into out (resized as needed), fanning out
// to the worker pool when the parallel path is enabled and applicable.
func (p *HEEB) scoreAll(st *join.State, cands []join.Tuple, out []float64) []float64 {
	if cap(out) < len(cands) {
		out = make([]float64, len(cands))
	} else {
		out = out[:len(cands)]
	}
	if !p.parallelApplicable(len(cands)) {
		for i, c := range cands {
			out[i] = p.score(st, c)
		}
		return out
	}
	// Prewarm the decision's forecasts to the maximum scoring horizon so the
	// workers only ever read the cache. Each worker owns a contiguous index
	// range of out, so the merge is deterministic regardless of scheduling.
	horizon := core.HorizonFor(p.l(), p.Opts.FallbackHorizon)
	for s := 0; s < 2; s++ {
		if st.Procs()[s] != nil {
			p.fc.Warm(core.StreamID(s), horizon)
		}
	}
	workers := p.Opts.ParallelWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	chunk := (len(cands) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(cands); lo += chunk {
		hi := min(lo+chunk, len(cands))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = p.score(st, cands[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// parallelApplicable gates the worker pool: opt-in, enough candidates to
// amortize the fan-out, and a scoring mode that is read-only once the
// decision's forecasts are prewarmed (direct scoring through the memo; the
// incremental modes mutate per-tuple state and stay serial).
func (p *HEEB) parallelApplicable(n int) bool {
	if !p.Opts.Parallel || p.Opts.Mode != HEEBDirect || p.fc == nil {
		return false
	}
	threshold := p.Opts.ParallelThreshold
	if threshold <= 0 {
		threshold = DefaultParallelThreshold
	}
	return n >= threshold
}

// DefaultParallelThreshold is the candidate count from which the opt-in
// parallel scorer fans out (HEEBOptions.ParallelThreshold = 0).
const DefaultParallelThreshold = 64

// ScoreCandidates returns the H_x value of every candidate under the
// configured scoring mode — the numbers Evict compares. The telemetry
// layer's decision trace uses it to record why each victim was chosen
// (telemetry.CandidateScorer).
func (p *HEEB) ScoreCandidates(st *join.State, cands []join.Tuple) []float64 {
	p.bindDecision(st)
	return p.scoreAll(st, cands, nil)
}

// score computes H for one candidate according to the configured mode.
// Band joins are handled by the direct and incremental modes (band
// probabilities slot into the same sums); precomputed forms tabulate the
// equijoin score, so they fall back to direct scoring under a band.
func (p *HEEB) score(st *join.State, tp join.Tuple) float64 {
	partner := tp.Stream.Partner()
	if p.cfg.Band > 0 {
		switch p.Opts.Mode {
		case HEEBIncremental:
			return p.scoreIncremental(st, tp)
		default:
			return p.bandJoinH(st, partner, tp.Value, p.tupleL(st.Time, tp))
		}
	}
	switch p.Opts.Mode {
	case HEEBPrecomputedH1:
		return p.clipWindow(st, tp, p.h1[partner].At(st.Hists[partner].Last(), tp.Value))
	case HEEBPrecomputedH2:
		return p.clipWindow(st, tp, p.h2[partner].At(st.Hists[partner].Last(), tp.Value))
	case HEEBIncremental:
		return p.scoreIncremental(st, tp)
	case HEEBValueIncremental:
		return p.scoreValueIncremental(st, tp)
	default:
		return p.joinH(st, partner, tp.Value, p.tupleL(st.Time, tp))
	}
}

// joinH routes the direct equijoin score through the per-decision forecast
// memo when enabled; the two paths are bitwise-identical (shared kernel in
// internal/core).
func (p *HEEB) joinH(st *join.State, partner core.StreamID, v int, l core.LFunc) float64 {
	if p.fc != nil {
		return core.JoinHCached(p.fc, partner, v, l, p.Opts.FallbackHorizon)
	}
	return core.JoinH(st.Procs()[partner], st.Hists[partner], v, l, p.Opts.FallbackHorizon)
}

// bandJoinH is joinH's band-join counterpart.
func (p *HEEB) bandJoinH(st *join.State, partner core.StreamID, v int, l core.LFunc) float64 {
	if p.fc != nil {
		return core.BandJoinHCached(p.fc, partner, v, p.cfg.Band, l, p.Opts.FallbackHorizon)
	}
	return core.BandJoinH(st.Procs()[partner], st.Hists[partner], v, p.cfg.Band, l, p.Opts.FallbackHorizon)
}

// scoreValueIncremental implements Corollary 5: for a linear-trend partner,
// translate the (value, time) pair to its time-invariant offset and reuse
// any previously computed H for that offset.
func (p *HEEB) scoreValueIncremental(st *join.State, tp join.Tuple) float64 {
	partner := tp.Stream.Partner()
	proc := st.Procs()[partner]
	lt, ok := proc.(*process.LinearTrend)
	if !ok || p.cfg.Window > 0 {
		return p.joinH(st, partner, tp.Value, p.tupleL(st.Time, tp))
	}
	offset := tp.Value - lt.Slope*st.Time
	if h, ok := p.offsetH[partner][offset]; ok {
		return h
	}
	h := p.joinH(st, partner, tp.Value, p.l())
	//lint:ignore scorepure per-decision offset memo: h is a deterministic function of (stream state, seed) and the map is rebound each decision, so replay is bit-identical
	p.offsetH[partner][offset] = h
	return h
}

// clipWindow zeroes the precomputed score for expired tuples under window
// semantics (the precomputed forms tabulate the unwindowed H).
func (p *HEEB) clipWindow(st *join.State, tp join.Tuple, h float64) float64 {
	if p.cfg.Window > 0 && tp.Arrived+p.cfg.Window-st.Time <= 0 {
		return 0
	}
	return h
}

// scoreIncremental maintains H via Corollary 3. The update requires
// independent streams and no window clipping; Reset panics are avoided by
// validating lazily here.
func (p *HEEB) scoreIncremental(st *join.State, tp join.Tuple) float64 {
	partner := tp.Stream.Partner()
	proc := st.Procs()[partner]
	if !proc.Independent() || p.cfg.Window > 0 {
		// Fall back to direct scoring where Corollary 3 does not apply.
		return p.bandJoinH(st, partner, tp.Value, p.tupleL(st.Time, tp))
	}
	e, ok := p.inc[tp.ID]
	if !ok {
		h := p.bandJoinH(st, partner, tp.Value, p.l())
		//lint:ignore scorepure Corollary-3 incremental memo seed: the entry is a deterministic function of (stream state, seed), advanced in lockstep with stream time on every replay
		p.inc[tp.ID] = &heebEntry{h: h, last: st.Time}
		return h
	}
	// Catch up one Corollary 3 step per elapsed time step. For independent
	// streams the forecast of time u does not depend on the conditioning
	// point, so the current history serves for all intermediate steps. The
	// recurrence holds verbatim for band probabilities.
	for e.last < st.Time {
		u := e.last + 1 // absolute time being folded in
		pNow := core.BandProb(p.forecastAt(proc, partner, st.Hists[partner], u), tp.Value, p.cfg.Band)
		e.h = core.JoinHStep(e.h, p.alpha, pNow) //lint:ignore scorepure Corollary-3 incremental memo advance: a deterministic recurrence over stream time, identical on every replay
		e.last++                                 //lint:ignore scorepure memo cursor for the Corollary-3 recurrence above
	}
	return e.h
}

// forecastAt returns the PMF of the partner's arrival at absolute time u,
// evaluated from the current history (valid for independent streams, where
// conditioning does not matter). Future forecasts go through the decision
// memo when enabled; already-observed steps condition on a truncated history
// and cannot be shared.
func (p *HEEB) forecastAt(proc process.Process, partner core.StreamID, h *process.History, u int) dist.PMF {
	delta := u - h.T0()
	if delta >= 1 {
		if p.fc != nil {
			return p.fc.At(partner, delta)
		}
		return proc.Forecast(h, delta)
	}
	// u is already observed: the "probability" seen from u-1 of the value
	// at u — recompute from a truncated history.
	trunc := process.NewHistory(h.Values()[:u]...)
	return proc.Forecast(trunc, 1)
}
