// Package policy implements the cache-replacement policies compared in the
// paper's joining experiments: the oblivious RAND, the hardwired heuristics
// PROB and LIFE of Das et al. (window-aware variants, as in Section 6.2),
// the paper's HEEB in its direct, time-incremental and precomputed (h1/h2)
// forms, and the FlowExpect algorithm of Section 3.
package policy

import (
	"sort"

	"stochstream/internal/join"
	"stochstream/internal/stats"
)

// Lifetime estimates how many more steps a tuple can produce join results;
// values <= 0 mean the tuple is expired (it lies behind its partner's
// reachable window). The TOWER/ROOF/FLOOR experiments use the noise bound as
// this pseudo-window, exactly as the paper configures LIFE, RAND and PROB.
type Lifetime func(now int, tp join.Tuple) int

// evictLowest returns the indices of the n lowest-scoring candidates in
// ascending (score, ID) order, breaking ties by preferring older tuples
// (smaller ID) for determinism. A steady-state decision selects n = 2 victims
// out of cacheSize+2 candidates, so instead of fully sorting all candidates
// (O(N log N)) it keeps a bounded max-heap of the n best victims seen so far
// (O(N log n)) and only sorts those n at the end. The output is identical to
// the full stable sort's first n entries: (score, ID) is a total order over
// distinct candidates, so stability never matters.
func evictLowest(scores []float64, cands []join.Tuple, n int) []int {
	if n <= 0 {
		return []int{}
	}
	// worse reports whether candidate a makes a strictly worse victim than b,
	// i.e. sorts after it in the ascending (score, ID) order.
	worse := func(a, b int) bool {
		//lint:ignore floateq deterministic (score, ID) tie-break; scores are bitwise-reproducible kernel outputs
		if scores[a] != scores[b] {
			return scores[a] > scores[b]
		}
		return cands[a].ID > cands[b].ID
	}
	var sel []int
	if n >= len(cands) {
		sel = make([]int, len(cands))
		for i := range sel {
			sel[i] = i
		}
	} else {
		// Max-heap of the current n victims, rooted at the worst of them.
		h := make([]int, n)
		for i := range h {
			h[i] = i
		}
		for i := n/2 - 1; i >= 0; i-- {
			heapSiftDown(h, i, worse)
		}
		for i := n; i < len(cands); i++ {
			if worse(h[0], i) {
				h[0] = i
				heapSiftDown(h, 0, worse)
			}
		}
		sel = h
	}
	sort.Slice(sel, func(a, b int) bool { return worse(sel[b], sel[a]) })
	return sel[:min(n, len(sel))]
}

// heapSiftDown restores the max-heap property (parent worse than children,
// per the comparator) below position i.
func heapSiftDown(h []int, i int, worse func(a, b int) bool) {
	for {
		l, r := 2*i+1, 2*i+2
		top := i
		if l < len(h) && worse(h[l], h[top]) {
			top = l
		}
		if r < len(h) && worse(h[r], h[top]) {
			top = r
		}
		if top == i {
			return
		}
		h[i], h[top] = h[top], h[i]
		i = top
	}
}

// Rand discards tuples uniformly at random, except that expired tuples (per
// the optional Lifetime) are always discarded first.
type Rand struct {
	Lifetime Lifetime
	rng      *stats.RNG
}

// Name implements join.Policy.
func (p *Rand) Name() string { return "RAND" }

// Reset implements join.Policy.
func (p *Rand) Reset(_ join.Config, rng *stats.RNG) { p.rng = rng }

// Evict implements join.Policy.
func (p *Rand) Evict(st *join.State, cands []join.Tuple, n int) []int {
	scores := make([]float64, len(cands))
	perm := p.rng.Perm(len(cands))
	for i := range cands {
		// Random base score; expired tuples forced to the bottom.
		scores[i] = 1 + float64(perm[i])
		if p.Lifetime != nil && p.Lifetime(st.Time, cands[i]) <= 0 {
			scores[i] = -1 - float64(perm[i])
		}
	}
	return evictLowest(scores, cands, n)
}

// valueCounts tracks empirical frequencies of each stream's values, which
// PROB and LIFE use to estimate join probabilities from the past.
type valueCounts struct {
	counts   [2]map[int]int
	consumed [2]int
}

func newValueCounts() *valueCounts {
	return &valueCounts{counts: [2]map[int]int{{}, {}}}
}

// catchUp folds unread history into the counts.
func (vc *valueCounts) catchUp(st *join.State) {
	for s := 0; s < 2; s++ {
		h := st.Hists[s]
		for ; vc.consumed[s] < h.Len(); vc.consumed[s]++ {
			vc.counts[s][h.At(vc.consumed[s])]++
		}
	}
}

// partnerFreq estimates the probability that a partner arrival matches tp,
// summing over the band when the join is a band join.
func (vc *valueCounts) partnerFreq(st *join.State, tp join.Tuple) float64 {
	partner := tp.Stream.Partner()
	total := st.Hists[partner].Len()
	if total == 0 {
		return 0
	}
	count := 0
	for v := tp.Value - st.Config.Band; v <= tp.Value+st.Config.Band; v++ {
		count += vc.counts[partner][v]
	}
	return float64(count) / float64(total)
}

// Prob is the PROB heuristic of Das et al.: discard the tuple whose join
// attribute value is least frequent in the partner stream's history.
// Section 5.2 proves it optimal for stationary independent streams; with a
// trend it systematically discards fresh arrivals (Section 6.3). Expired
// tuples are discarded first when a Lifetime is configured.
type Prob struct {
	Lifetime Lifetime
	vc       *valueCounts
}

// Name implements join.Policy.
func (p *Prob) Name() string { return "PROB" }

// Reset implements join.Policy.
func (p *Prob) Reset(join.Config, *stats.RNG) { p.vc = newValueCounts() }

// Evict implements join.Policy.
func (p *Prob) Evict(st *join.State, cands []join.Tuple, n int) []int {
	p.vc.catchUp(st)
	scores := make([]float64, len(cands))
	for i, c := range cands {
		scores[i] = p.vc.partnerFreq(st, c)
		if p.Lifetime != nil && p.Lifetime(st.Time, c) <= 0 {
			scores[i] = -1
		}
	}
	return evictLowest(scores, cands, n)
}

// Reservoir is the sampling comparator from the related-work discussion:
// load shedding by maintaining a uniform random sample of all tuples seen so
// far (classic reservoir sampling over the union of both streams). It is the
// method of choice when a statistical sample of the *result* is wanted, but
// — as the paper argues — it is ineffective under the MAX-subset measure,
// which the experiments against HEEB make concrete.
type Reservoir struct {
	rng  *stats.RNG
	seen int
}

// Name implements join.Policy.
func (p *Reservoir) Name() string { return "RESERVOIR" }

// Reset implements join.Policy.
func (p *Reservoir) Reset(_ join.Config, rng *stats.RNG) {
	p.rng = rng
	p.seen = 0
}

// Evict implements join.Policy: each arrival is admitted with probability
// k/seen (the reservoir rule), displacing a uniformly random cached tuple;
// rejected arrivals are discarded. Exactly n indices are returned: rejected
// arrivals first, then random cached victims for the admitted ones (an
// admitted arrival is bumped back out only when the cache is too small to
// hold both admissions).
func (p *Reservoir) Evict(st *join.State, cands []join.Tuple, n int) []int {
	k := st.Config.CacheSize
	cached := len(cands) - 2
	var evict []int
	admitted := 0
	for ai := cached; ai < len(cands); ai++ {
		p.seen++
		if p.seen <= k || p.rng.IntN(p.seen) < k {
			admitted++
		} else {
			evict = append(evict, ai)
		}
	}
	// Fill the remainder with distinct random cached victims; if the cache
	// cannot absorb every admission, bump arrivals back out (newest first).
	perm := p.rng.Perm(cached)
	for i := 0; len(evict) < n; i++ {
		if i < cached {
			evict = append(evict, perm[i])
		} else {
			evict = append(evict, len(cands)-1-(i-cached))
		}
	}
	return evict[:n]
}

// Life is the LIFE heuristic of Das et al.: discard the tuple with the
// smallest product of estimated join probability and remaining lifetime. It
// requires a Lifetime estimator (the paper skips LIFE for WALK, which has no
// window).
type Life struct {
	Lifetime Lifetime
	vc       *valueCounts
}

// Name implements join.Policy.
func (p *Life) Name() string { return "LIFE" }

// Reset implements join.Policy.
func (p *Life) Reset(join.Config, *stats.RNG) {
	if p.Lifetime == nil {
		panic("policy: LIFE requires a Lifetime estimator")
	}
	p.vc = newValueCounts()
}

// Evict implements join.Policy.
func (p *Life) Evict(st *join.State, cands []join.Tuple, n int) []int {
	p.vc.catchUp(st)
	scores := make([]float64, len(cands))
	for i, c := range cands {
		life := p.Lifetime(st.Time, c)
		if life <= 0 {
			scores[i] = -1
			continue
		}
		scores[i] = p.vc.partnerFreq(st, c) * float64(life)
	}
	return evictLowest(scores, cands, n)
}
