package policy

import (
	"testing"

	"stochstream/internal/core"
	"stochstream/internal/dist"
	"stochstream/internal/join"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func mkState(t0 int, rHist, sHist []int, procs [2]process.Process, cfg join.Config) *join.State {
	return &join.State{
		Time:   t0,
		Hists:  [2]*process.History{process.NewHistory(rHist...), process.NewHistory(sHist...)},
		Config: cfg,
	}
}

func tup(id, v int, s core.StreamID, arrived int) join.Tuple {
	return join.Tuple{ID: id, Value: v, Stream: s, Arrived: arrived}
}

func TestEvictLowest(t *testing.T) {
	cands := []join.Tuple{tup(0, 1, 0, 0), tup(1, 2, 0, 0), tup(2, 3, 0, 0)}
	got := evictLowest([]float64{0.5, 0.1, 0.9}, cands, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("evictLowest = %v, want [1 0]", got)
	}
	// Ties break by tuple ID (older first).
	got = evictLowest([]float64{0.5, 0.5, 0.5}, cands, 1)
	if got[0] != 0 {
		t.Fatalf("tie-break = %v, want oldest (0)", got)
	}
}

func TestRandValidAndSeeded(t *testing.T) {
	p := &Rand{}
	cands := []join.Tuple{tup(0, 1, 0, 0), tup(1, 2, 1, 0), tup(2, 3, 0, 1), tup(3, 4, 1, 1)}
	st := mkState(1, []int{1, 3}, []int{2, 4}, [2]process.Process{}, join.Config{CacheSize: 2})
	p.Reset(st.Config, stats.NewRNG(5))
	a := p.Evict(st, cands, 2)
	p.Reset(st.Config, stats.NewRNG(5))
	b := p.Evict(st, cands, 2)
	if len(a) != 2 || a[0] == a[1] {
		t.Fatalf("invalid eviction %v", a)
	}
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatal("same seed gave different evictions")
	}
}

func TestRandEvictsExpiredFirst(t *testing.T) {
	expired := map[int]bool{7: true}
	p := &Rand{Lifetime: func(_ int, tp join.Tuple) int {
		if expired[tp.Value] {
			return 0
		}
		return 10
	}}
	cands := []join.Tuple{tup(0, 1, 0, 0), tup(1, 7, 0, 0), tup(2, 3, 1, 1)}
	st := mkState(1, nil, nil, [2]process.Process{}, join.Config{CacheSize: 2})
	for seed := uint64(0); seed < 20; seed++ {
		p.Reset(st.Config, stats.NewRNG(seed))
		got := p.Evict(st, cands, 1)
		if got[0] != 1 {
			t.Fatalf("seed %d: evicted %d, want the expired tuple (1)", seed, got[0])
		}
	}
}

func TestProbEvictsLeastFrequentInPartnerHistory(t *testing.T) {
	p := &Prob{}
	st := mkState(4,
		[]int{10, 10, 10, 11, 12}, // R history: 10 frequent
		[]int{20, 21, 21, 21, 22}, // S history: 21 frequent
		[2]process.Process{}, join.Config{CacheSize: 2})
	p.Reset(st.Config, stats.NewRNG(1))
	// Candidates from S side are scored against R's history; from R side
	// against S's history.
	cands := []join.Tuple{
		tup(0, 10, core.StreamS, 0), // p = 3/5 (R history)
		tup(1, 11, core.StreamS, 1), // p = 1/5
		tup(2, 21, core.StreamR, 2), // p = 3/5 (S history)
		tup(3, 25, core.StreamR, 3), // p = 0
	}
	got := p.Evict(st, cands, 2)
	want := map[int]bool{1: true, 3: true}
	for _, i := range got {
		if !want[i] {
			t.Fatalf("PROB evicted %v, want {1, 3}", got)
		}
	}
}

func TestProbDiscardsFreshArrivalsUnderTrend(t *testing.T) {
	// With an increasing trend, new values have never been seen in the
	// partner history, so PROB discards them — the pathology of Section 6.3.
	p := &Prob{}
	rh := make([]int, 50)
	sh := make([]int, 50)
	for i := range rh {
		rh[i] = i
		sh[i] = i
	}
	st := mkState(49, rh, sh, [2]process.Process{}, join.Config{CacheSize: 2})
	p.Reset(st.Config, stats.NewRNG(1))
	cands := []join.Tuple{
		tup(0, 40, core.StreamS, 40), // seen in partner history
		tup(1, 55, core.StreamS, 49), // ahead of the trend: never seen
	}
	got := p.Evict(st, cands, 1)
	if got[0] != 1 {
		t.Fatalf("PROB evicted %d, want the fresh arrival", got[0])
	}
}

func TestLifeWeighsLifetime(t *testing.T) {
	// Two tuples equally frequent; LIFE keeps the longer-lived one.
	life := func(_ int, tp join.Tuple) int { return tp.Value } // lifetime = value, for the test
	p := &Life{Lifetime: life}
	st := mkState(3, []int{5, 30, 5, 30}, []int{0, 0, 0, 0}, [2]process.Process{}, join.Config{CacheSize: 1})
	p.Reset(st.Config, stats.NewRNG(1))
	cands := []join.Tuple{
		tup(0, 5, core.StreamS, 0),  // freq 1/2, lifetime 5
		tup(1, 30, core.StreamS, 1), // freq 1/2, lifetime 30
	}
	got := p.Evict(st, cands, 1)
	if got[0] != 0 {
		t.Fatalf("LIFE evicted %d, want the short-lived tuple", got[0])
	}
}

func TestLifeRequiresLifetime(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LIFE without lifetime did not panic")
		}
	}()
	(&Life{}).Reset(join.Config{}, stats.NewRNG(1))
}

func trendConfig(cache int) (join.Config, [2]process.Process) {
	procs := [2]process.Process{
		&process.LinearTrend{Slope: 1, Intercept: -1, Noise: dist.BoundedNormal(1, 10)},
		&process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(2, 15)},
	}
	return join.Config{CacheSize: cache, Warmup: 0, Procs: procs}, procs
}

func TestHEEBDirectPrefersUpstreamTuples(t *testing.T) {
	cfg, procs := trendConfig(2)
	p := NewHEEB(HEEBOptions{Mode: HEEBDirect, LifetimeEstimate: 3})
	p.Reset(cfg, stats.NewRNG(1))
	t0 := 50
	rh := make([]int, t0+1)
	sh := make([]int, t0+1)
	for i := range rh {
		rh[i], sh[i] = i-1, i
	}
	st := &join.State{Time: t0, Hists: [2]*process.History{process.NewHistory(rh...), process.NewHistory(sh...)}, Config: cfg}
	_ = procs
	cands := []join.Tuple{
		tup(0, t0-12, core.StreamS, t0-12), // behind R's window: near-zero H
		tup(1, t0, core.StreamS, t0),       // near the trend: high H
		tup(2, t0+3, core.StreamR, t0),     // slightly ahead: decent H
	}
	got := p.Evict(st, cands, 1)
	if got[0] != 0 {
		t.Fatalf("HEEB evicted %d, want the expired tuple 0", got[0])
	}
}

func TestHEEBIncrementalMatchesDirectDecisions(t *testing.T) {
	cfg, _ := trendConfig(8)
	rng := stats.NewRNG(42)
	r := cfg.Procs[0].Generate(rng.Split(), 400)
	s := cfg.Procs[1].Generate(rng.Split(), 400)
	direct := join.Run(r, s, NewHEEB(HEEBOptions{Mode: HEEBDirect, LifetimeEstimate: 3}), cfg, stats.NewRNG(7))
	incr := join.Run(r, s, NewHEEB(HEEBOptions{Mode: HEEBIncremental, LifetimeEstimate: 3}), cfg, stats.NewRNG(7))
	if direct.TotalJoins != incr.TotalJoins {
		t.Fatalf("direct %d joins != incremental %d joins", direct.TotalJoins, incr.TotalJoins)
	}
}

func TestHEEBWalkH1RunsAndBeatsRand(t *testing.T) {
	procs := [2]process.Process{
		&process.GaussianWalk{Sigma: 1},
		&process.GaussianWalk{Sigma: 1},
	}
	cfg := join.Config{CacheSize: 10, Warmup: -1, Procs: procs}
	rng := stats.NewRNG(3)
	r := procs[0].Generate(rng.Split(), 2000)
	s := procs[1].Generate(rng.Split(), 2000)
	heeb := join.Run(r, s, NewHEEB(HEEBOptions{Mode: HEEBPrecomputedH1}), cfg, stats.NewRNG(1))
	rand := join.Run(r, s, &Rand{}, cfg, stats.NewRNG(1))
	if heeb.Joins <= rand.Joins {
		t.Fatalf("HEEB(h1) = %d joins, RAND = %d; expected HEEB to win", heeb.Joins, rand.Joins)
	}
}

func TestHEEBAdaptiveAlphaAdjusts(t *testing.T) {
	cfg, _ := trendConfig(5)
	p := NewHEEB(HEEBOptions{Mode: HEEBDirect, LifetimeEstimate: 3, Adaptive: true})
	rng := stats.NewRNG(11)
	r := cfg.Procs[0].Generate(rng.Split(), 300)
	s := cfg.Procs[1].Generate(rng.Split(), 300)
	res := join.Run(r, s, p, cfg, stats.NewRNG(2))
	if res.TotalJoins == 0 {
		t.Fatal("adaptive HEEB produced no joins at all")
	}
	// After the run the tracker has observations and alpha has moved off
	// the prior.
	if p.tracker.N() == 0 {
		t.Fatal("lifetime tracker saw no evictions")
	}
	prior := stats.AlphaForLifetime(3)
	if p.alpha == prior {
		t.Fatal("alpha never adapted")
	}
}

func TestHEEBDominancePrefilterKeepsDecisionsReasonable(t *testing.T) {
	cfg, _ := trendConfig(6)
	rng := stats.NewRNG(21)
	r := cfg.Procs[0].Generate(rng.Split(), 500)
	s := cfg.Procs[1].Generate(rng.Split(), 500)
	plain := join.Run(r, s, NewHEEB(HEEBOptions{Mode: HEEBDirect, LifetimeEstimate: 3}), cfg, stats.NewRNG(1))
	pre := join.Run(r, s, NewHEEB(HEEBOptions{Mode: HEEBDirect, LifetimeEstimate: 3, DominancePrefilter: true}), cfg, stats.NewRNG(1))
	// The prefilter only replaces HEEB choices with provably-optimal ones;
	// results should be close (identical in most runs, never catastrophic).
	lo := plain.Joins - plain.Joins/5
	if pre.Joins < lo {
		t.Fatalf("prefilter degraded joins: %d vs %d", pre.Joins, plain.Joins)
	}
}

func TestHEEBWindowClipsScores(t *testing.T) {
	cfg, _ := trendConfig(2)
	cfg.Window = 3
	p := NewHEEB(HEEBOptions{Mode: HEEBDirect, LifetimeEstimate: 3})
	p.Reset(cfg, stats.NewRNG(1))
	t0 := 30
	rh := make([]int, t0+1)
	sh := make([]int, t0+1)
	for i := range rh {
		rh[i], sh[i] = i-1, i
	}
	st := &join.State{Time: t0, Hists: [2]*process.History{process.NewHistory(rh...), process.NewHistory(sh...)}, Config: cfg}
	// Same value, but one arrived long ago (outside the window).
	inWin := tup(0, t0+1, core.StreamS, t0)
	expired := tup(1, t0+1, core.StreamS, t0-10)
	got := p.Evict(st, []join.Tuple{inWin, expired}, 1)
	if got[0] != 1 {
		t.Fatalf("window HEEB evicted %d, want the expired tuple", got[0])
	}
}

func TestFlowExpectMatchesOfflineOptimumOnDeterministicStreams(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.IntN(4)
		k := 1 + rng.IntN(2)
		r := make([]int, n)
		s := make([]int, n)
		for i := range r {
			r[i] = rng.IntN(3)
			s[i] = rng.IntN(3)
		}
		procs := [2]process.Process{
			&process.Deterministic{Seq: r},
			&process.Deterministic{Seq: s},
		}
		cfg := join.Config{CacheSize: k, Warmup: 0, Procs: procs}
		fe := &FlowExpect{Lookahead: n}
		got := join.Run(r, s, fe, cfg, stats.NewRNG(1))
		want := core.OptOfflineJoin(r, s, k, 0)
		if got.TotalJoins != want.Total {
			t.Fatalf("trial %d: FlowExpect %d != OPT %d (r=%v s=%v k=%d)",
				trial, got.TotalJoins, want.Total, r, s, k)
		}
	}
}

func TestFlowExpectRequiresModels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FlowExpect without models did not panic")
		}
	}()
	(&FlowExpect{}).Reset(join.Config{CacheSize: 1}, stats.NewRNG(1))
}

func TestHEEBModeString(t *testing.T) {
	for m, want := range map[HEEBMode]string{
		HEEBDirect: "direct", HEEBIncremental: "incremental",
		HEEBPrecomputedH1: "h1", HEEBPrecomputedH2: "h2", HEEBMode(9): "HEEBMode(9)",
	} {
		if got := m.String(); got != want {
			t.Fatalf("String(%d) = %q", int(m), got)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if (&Rand{}).Name() != "RAND" || (&Prob{}).Name() != "PROB" ||
		(&Life{}).Name() != "LIFE" || (&FlowExpect{}).Name() != "FLOWEXPECT" ||
		NewHEEB(HEEBOptions{}).Name() != "HEEB" {
		t.Fatal("a policy name is wrong")
	}
}

func TestHEEBValueIncrementalMatchesDirectDecisions(t *testing.T) {
	cfg, _ := trendConfig(8)
	rng := stats.NewRNG(43)
	r := cfg.Procs[0].Generate(rng.Split(), 500)
	s := cfg.Procs[1].Generate(rng.Split(), 500)
	direct := join.Run(r, s, NewHEEB(HEEBOptions{Mode: HEEBDirect, LifetimeEstimate: 3}), cfg, stats.NewRNG(7))
	vi := NewHEEB(HEEBOptions{Mode: HEEBValueIncremental, LifetimeEstimate: 3})
	viRes := join.Run(r, s, vi, cfg, stats.NewRNG(7))
	if direct.TotalJoins != viRes.TotalJoins {
		t.Fatalf("direct %d joins != value-incremental %d joins", direct.TotalJoins, viRes.TotalJoins)
	}
	// The offset cache is populated and bounded by the noise supports: the
	// trend keeps offsets inside the noise band, so the cache stays small
	// even over long runs (the whole point of Corollary 5).
	cached := len(vi.offsetH[0]) + len(vi.offsetH[1])
	if cached == 0 {
		t.Fatal("offset cache unused")
	}
	if cached > 200 {
		t.Fatalf("offset cache grew unboundedly: %d entries", cached)
	}
}

func TestHEEBValueIncrementalFallsBackForMarkovStreams(t *testing.T) {
	procs := [2]process.Process{
		&process.GaussianWalk{Sigma: 1},
		&process.GaussianWalk{Sigma: 1},
	}
	cfg := join.Config{CacheSize: 5, Warmup: 0, Procs: procs}
	rng := stats.NewRNG(3)
	r := procs[0].Generate(rng.Split(), 300)
	s := procs[1].Generate(rng.Split(), 300)
	vi := NewHEEB(HEEBOptions{Mode: HEEBValueIncremental})
	res := join.Run(r, s, vi, cfg, stats.NewRNG(1))
	if len(vi.offsetH[0])+len(vi.offsetH[1]) != 0 {
		t.Fatal("offset cache must stay empty for non-trend streams")
	}
	direct := join.Run(r, s, NewHEEB(HEEBOptions{Mode: HEEBDirect}), cfg, stats.NewRNG(1))
	if res.TotalJoins != direct.TotalJoins {
		t.Fatalf("fallback diverged: %d vs %d", res.TotalJoins, direct.TotalJoins)
	}
}

// Replaying the offline optimum's schedule through the simulator must
// achieve exactly the flow's result count — the flow solution is a real
// cache trace, not just a bound.
func TestClairvoyantRealizesOptimum(t *testing.T) {
	rng := stats.NewRNG(71)
	for trial := 0; trial < 25; trial++ {
		n := 20 + rng.IntN(120)
		k := 1 + rng.IntN(5)
		vals := 2 + rng.IntN(6)
		r := make([]int, n)
		s := make([]int, n)
		for i := range r {
			r[i] = rng.IntN(vals)
			s[i] = rng.IntN(vals)
		}
		window := 0
		if rng.IntN(2) == 1 {
			window = 3 + rng.IntN(10)
		}
		cv := &Clairvoyant{R: r, S: s}
		cfg := join.Config{CacheSize: k, Warmup: 0, Window: window}
		res := join.Run(r, s, cv, cfg, stats.NewRNG(1))
		if res.TotalJoins != cv.Result.Total {
			t.Fatalf("trial %d (n=%d k=%d w=%d): replay %d != flow optimum %d",
				trial, n, k, window, res.TotalJoins, cv.Result.Total)
		}
	}
}

func TestClairvoyantBandJoin(t *testing.T) {
	r := []int{10, 0, 0, 0}
	s := []int{99, 12, 99, 11}
	cv := &Clairvoyant{R: r, S: s}
	cfg := join.Config{CacheSize: 1, Warmup: 0, Band: 2}
	res := join.Run(r, s, cv, cfg, stats.NewRNG(1))
	// R(10) matches S arrivals 12 (t=1) and 11 (t=3) within band 2.
	if res.TotalJoins != 2 || cv.Result.Total != 2 {
		t.Fatalf("replay %d, optimum %d, want 2", res.TotalJoins, cv.Result.Total)
	}
}

func TestClairvoyantRequiresStreams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing streams did not panic")
		}
	}()
	(&Clairvoyant{}).Reset(join.Config{CacheSize: 1}, stats.NewRNG(1))
}

func TestHEEBJoiningH2ModeOnAR1Streams(t *testing.T) {
	procs := [2]process.Process{
		&process.AR1{Phi0: 10, Phi1: 0.6, Sigma: 4, Init: 25},
		&process.AR1{Phi0: 10, Phi1: 0.6, Sigma: 4, Init: 25},
	}
	cfg := join.Config{CacheSize: 6, Warmup: -1, Procs: procs}
	rng := stats.NewRNG(13)
	r := procs[0].Generate(rng.Split(), 1500)
	s := procs[1].Generate(rng.Split(), 1500)
	h2 := join.Run(r, s, NewHEEB(HEEBOptions{Mode: HEEBPrecomputedH2}), cfg, stats.NewRNG(1))
	rnd := join.Run(r, s, &Rand{}, cfg, stats.NewRNG(1))
	if h2.Joins <= rnd.Joins {
		t.Fatalf("HEEB(h2) %d <= RAND %d on AR(1) streams", h2.Joins, rnd.Joins)
	}
	// h2 mode clips expired tuples to zero under a window.
	winCfg := cfg
	winCfg.Window = 5
	win := join.Run(r, s, NewHEEB(HEEBOptions{Mode: HEEBPrecomputedH2}), winCfg, stats.NewRNG(1))
	if win.Joins > h2.Joins {
		t.Fatalf("windowed h2 produced more joins: %d > %d", win.Joins, h2.Joins)
	}
}

func TestHEEBH2ModeRejectsNonAR1(t *testing.T) {
	procs := [2]process.Process{
		&process.GaussianWalk{Sigma: 1},
		&process.GaussianWalk{Sigma: 1},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("h2 mode on walks did not panic")
		}
	}()
	NewHEEB(HEEBOptions{Mode: HEEBPrecomputedH2}).Reset(join.Config{CacheSize: 2, Procs: procs}, stats.NewRNG(1))
}

func TestHEEBH1ModeRejectsNonForecaster(t *testing.T) {
	procs := [2]process.Process{
		&process.Stationary{P: dist.NewUniform(0, 3)},
		&process.Stationary{P: dist.NewUniform(0, 3)},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("h1 mode on stationary streams did not panic")
		}
	}()
	NewHEEB(HEEBOptions{Mode: HEEBPrecomputedH1}).Reset(join.Config{CacheSize: 2, Procs: procs}, stats.NewRNG(1))
}

func TestClairvoyantMetadata(t *testing.T) {
	cv := &Clairvoyant{R: []int{1, 2}, S: []int{2, 1}}
	if cv.Name() != "OPT-OFFLINE" {
		t.Fatalf("Name = %q", cv.Name())
	}
	cv.EagerEvict() // marker method; must exist for the simulator contract
	var _ join.EagerEvictor = cv
}

func TestWalkParamsDefaults(t *testing.T) {
	// Unknown process types fall back to (1, 0) so the h1 range stays sane.
	sigma, drift := walkParams(&process.Stationary{P: dist.NewUniform(0, 1)})
	if sigma != 1 || drift != 0 {
		t.Fatalf("defaults = %v, %v", sigma, drift)
	}
	sigma, drift = walkParams(&process.AR1{Phi0: 2, Phi1: 1, Sigma: 3})
	if sigma != 3 || drift != 2 {
		t.Fatalf("AR1 params = %v, %v", sigma, drift)
	}
}

func TestReservoirMaintainsUniformSample(t *testing.T) {
	// Feed arrivals with increasing timestamps; the reservoir keeps a
	// uniform sample over arrival order, so the mean kept arrival time
	// should be near the middle of the run.
	procs := [2]process.Process{
		&process.Stationary{P: dist.NewUniform(0, 99)},
		&process.Stationary{P: dist.NewUniform(0, 99)},
	}
	cfg := join.Config{CacheSize: 20, Warmup: 0, Procs: procs}
	n := 2000
	rng := stats.NewRNG(3)
	r := procs[0].Generate(rng.Split(), n)
	s := procs[1].Generate(rng.Split(), n)
	var meanArrived stats.Summary
	for trial := uint64(0); trial < 30; trial++ {
		res := &Reservoir{}
		join.Run(r, s, res, cfg, stats.NewRNG(trial))
		// Snapshot via a follow-up eviction call is awkward; instead rerun
		// tracking through a wrapper policy below.
		_ = res
		probe := &reservoirProbe{inner: &Reservoir{}}
		join.Run(r, s, probe, cfg, stats.NewRNG(trial))
		for _, tp := range probe.final {
			meanArrived.Add(float64(tp.Arrived))
		}
	}
	mid := float64(n) / 2
	if meanArrived.Mean() < mid*0.85 || meanArrived.Mean() > mid*1.15 {
		t.Fatalf("mean kept arrival %v, want ~%v (uniform over time)", meanArrived.Mean(), mid)
	}
}

// reservoirProbe records the cache contents at the final eviction.
type reservoirProbe struct {
	inner *Reservoir
	final []join.Tuple
}

func (p *reservoirProbe) Name() string { return "probe" }
func (p *reservoirProbe) Reset(cfg join.Config, rng *stats.RNG) {
	p.inner.Reset(cfg, rng)
	p.final = nil
}
func (p *reservoirProbe) Evict(st *join.State, cands []join.Tuple, n int) []int {
	evict := p.inner.Evict(st, cands, n)
	drop := map[int]bool{}
	for _, i := range evict {
		drop[i] = true
	}
	p.final = p.final[:0]
	for i, c := range cands {
		if !drop[i] {
			p.final = append(p.final, c)
		}
	}
	return evict
}

func TestReservoirLosesToHEEBUnderTrend(t *testing.T) {
	// The related-work claim: sampling is ineffective for MAX-subset.
	cfg, _ := trendConfig(10)
	cfg.Warmup = -1
	rng := stats.NewRNG(8)
	r := cfg.Procs[0].Generate(rng.Split(), 2500)
	s := cfg.Procs[1].Generate(rng.Split(), 2500)
	heeb := join.Run(r, s, NewHEEB(HEEBOptions{LifetimeEstimate: 3}), cfg, stats.NewRNG(1))
	sample := join.Run(r, s, &Reservoir{}, cfg, stats.NewRNG(1))
	if sample.Joins*2 > heeb.Joins {
		t.Fatalf("reservoir %d not far below HEEB %d", sample.Joins, heeb.Joins)
	}
}

func TestReservoirTinyCache(t *testing.T) {
	// Cache of 1 exercises the bump-an-arrival path; the run must satisfy
	// the simulator's eviction-count contract throughout.
	procs := [2]process.Process{
		&process.Stationary{P: dist.NewUniform(0, 4)},
		&process.Stationary{P: dist.NewUniform(0, 4)},
	}
	cfg := join.Config{CacheSize: 1, Warmup: 0, Procs: procs}
	rng := stats.NewRNG(2)
	r := procs[0].Generate(rng.Split(), 500)
	s := procs[1].Generate(rng.Split(), 500)
	join.Run(r, s, &Reservoir{}, cfg, stats.NewRNG(1)) // must not panic
}
