package policy

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// This file implements join.StateSnapshotter for the policies that carry
// decision state a checkpoint must capture: HEEB (adaptive α, the lifetime
// tracker, incrementally maintained per-tuple scores), the RNG-driven RAND
// and RESERVOIR, and Ladder (which delegates to its rungs). PROB and LIFE
// rebuild their value counts from the restored histories, and FlowExpect's
// forecast memo is rebound every decision, so neither needs snapshot code.
//
// Wire format: gob of an exported wire struct per policy. The bytes travel
// inside the engine checkpoint's versioned, checksummed envelope
// (internal/checkpoint), so no versioning is repeated here.

type heebWire struct {
	Alpha                     float64
	TrackerDecay, TrackerMean float64
	TrackerN                  int
	Inc                       map[int]heebWireEntry
	OffsetH                   [2]map[int]float64
}

type heebWireEntry struct {
	H    float64
	Last int
}

// SnapshotState implements join.StateSnapshotter.
func (p *HEEB) SnapshotState() ([]byte, error) {
	w := heebWire{
		Alpha:   p.alpha,
		Inc:     make(map[int]heebWireEntry, len(p.inc)),
		OffsetH: [2]map[int]float64{{}, {}},
	}
	if p.tracker != nil {
		w.TrackerDecay, w.TrackerMean, w.TrackerN = p.tracker.State()
	}
	for id, e := range p.inc {
		w.Inc[id] = heebWireEntry{H: e.h, Last: e.last}
	}
	for s := 0; s < 2; s++ {
		for off, h := range p.offsetH[s] {
			w.OffsetH[s][off] = h
		}
	}
	return gobEncode(w)
}

// RestoreState implements join.StateSnapshotter. The policy must have been
// Reset with the same configuration that produced the snapshot; precomputed
// forms (h1/h2, the L table) are rebuilt deterministically on demand.
func (p *HEEB) RestoreState(data []byte) error {
	var w heebWire
	if err := gobDecode(data, &w); err != nil {
		return fmt.Errorf("policy: restoring HEEB state: %w", err)
	}
	if w.TrackerN > 0 || w.TrackerDecay != 0 {
		if err := p.tracker.Restore(w.TrackerDecay, w.TrackerMean, w.TrackerN); err != nil {
			return fmt.Errorf("policy: restoring HEEB lifetime tracker: %w", err)
		}
	}
	p.alpha = w.Alpha
	p.inc = make(map[int]*heebEntry, len(w.Inc))
	for id, e := range w.Inc {
		p.inc[id] = &heebEntry{h: e.H, last: e.Last}
	}
	p.offsetH = [2]map[int]float64{{}, {}}
	for s := 0; s < 2; s++ {
		for off, h := range w.OffsetH[s] {
			p.offsetH[s][off] = h
		}
	}
	return nil
}

type randWire struct{ RNG []byte }

// SnapshotState implements join.StateSnapshotter.
func (p *Rand) SnapshotState() ([]byte, error) {
	b, err := p.rng.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return gobEncode(randWire{RNG: b})
}

// RestoreState implements join.StateSnapshotter.
func (p *Rand) RestoreState(data []byte) error {
	var w randWire
	if err := gobDecode(data, &w); err != nil {
		return fmt.Errorf("policy: restoring RAND state: %w", err)
	}
	return p.rng.UnmarshalBinary(w.RNG)
}

type reservoirWire struct {
	RNG  []byte
	Seen int
}

// SnapshotState implements join.StateSnapshotter.
func (p *Reservoir) SnapshotState() ([]byte, error) {
	b, err := p.rng.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return gobEncode(reservoirWire{RNG: b, Seen: p.seen})
}

// RestoreState implements join.StateSnapshotter.
func (p *Reservoir) RestoreState(data []byte) error {
	var w reservoirWire
	if err := gobDecode(data, &w); err != nil {
		return fmt.Errorf("policy: restoring RESERVOIR state: %w", err)
	}
	if err := p.rng.UnmarshalBinary(w.RNG); err != nil {
		return err
	}
	p.seen = w.Seen
	return nil
}

type ladderWire struct {
	Rungs     []ladderRungWire
	Fallbacks []uint64
	LastRung  int
}

type ladderRungWire struct {
	Name     string
	HasState bool
	State    []byte
}

// SnapshotState implements join.StateSnapshotter by capturing every rung
// that itself carries state, plus the ladder's fallback counters.
func (p *Ladder) SnapshotState() ([]byte, error) {
	w := ladderWire{Fallbacks: append([]uint64(nil), p.fallbacks...), LastRung: p.lastRung}
	for _, r := range p.Rungs {
		rw := ladderRungWire{Name: r.Name()}
		if s, ok := r.(interface{ SnapshotState() ([]byte, error) }); ok {
			b, err := s.SnapshotState()
			if err != nil {
				return nil, fmt.Errorf("policy: snapshotting ladder rung %s: %w", r.Name(), err)
			}
			rw.HasState, rw.State = true, b
		}
		w.Rungs = append(w.Rungs, rw)
	}
	return gobEncode(w)
}

// RestoreState implements join.StateSnapshotter. The ladder must have been
// Reset with the same rung list that produced the snapshot.
func (p *Ladder) RestoreState(data []byte) error {
	var w ladderWire
	if err := gobDecode(data, &w); err != nil {
		return fmt.Errorf("policy: restoring ladder state: %w", err)
	}
	if len(w.Rungs) != len(p.Rungs) {
		return fmt.Errorf("policy: ladder snapshot has %d rungs, policy has %d", len(w.Rungs), len(p.Rungs))
	}
	for i, rw := range w.Rungs {
		if rw.Name != p.Rungs[i].Name() {
			return fmt.Errorf("policy: ladder rung %d is %s, snapshot has %s", i, p.Rungs[i].Name(), rw.Name)
		}
		if !rw.HasState {
			continue
		}
		s, ok := p.Rungs[i].(interface{ RestoreState([]byte) error })
		if !ok {
			return fmt.Errorf("policy: ladder rung %s cannot restore state", rw.Name)
		}
		if err := s.RestoreState(rw.State); err != nil {
			return err
		}
	}
	if len(w.Fallbacks) == len(p.fallbacks) {
		copy(p.fallbacks, w.Fallbacks)
	}
	p.lastRung = w.LastRung
	return nil
}

func gobEncode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
