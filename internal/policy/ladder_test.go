package policy

import (
	"errors"
	"testing"

	"stochstream/internal/core"
	"stochstream/internal/join"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// failingRung is a Fallible rung that errors for a configured number of
// decisions before recovering.
type failingRung struct {
	name  string
	fails int
	err   error
	n     int
}

func (p *failingRung) Name() string                  { return p.name }
func (p *failingRung) Reset(join.Config, *stats.RNG) { p.n = 0 }
func (p *failingRung) Evict(st *join.State, cands []join.Tuple, n int) []int {
	out, err := p.TryEvict(st, cands, n)
	if err != nil {
		panic(err)
	}
	return out
}
func (p *failingRung) TryEvict(_ *join.State, cands []join.Tuple, n int) ([]int, error) {
	if p.n++; p.n <= p.fails {
		return nil, p.err
	}
	out := make([]int, n)
	for i := range out {
		out[i] = len(cands) - 1 - i // newest-first, distinguishable from Lfixed
	}
	return out, nil
}

// panickingRung is a non-Fallible rung whose Evict panics — the ladder must
// catch it and degrade instead of crashing.
type panickingRung struct{}

func (panickingRung) Name() string                  { return "PANICKY" }
func (panickingRung) Reset(join.Config, *stats.RNG) {}
func (panickingRung) Evict(*join.State, []join.Tuple, int) []int {
	panic("rung bug")
}

// malformedRung returns duplicate indices; the ladder must validate and
// degrade past it.
type malformedRung struct{}

func (malformedRung) Name() string                  { return "MALFORMED" }
func (malformedRung) Reset(join.Config, *stats.RNG) {}
func (malformedRung) Evict(_ *join.State, cands []join.Tuple, n int) []int {
	out := make([]int, n)
	return out // all zeros: duplicates whenever n > 1
}

func ladderState(nCands int) (*join.State, []join.Tuple) {
	st := mkState(nCands, nil, nil, [2]process.Process{}, join.Config{CacheSize: nCands - 1})
	cands := make([]join.Tuple, nCands)
	for i := range cands {
		cands[i] = tup(i, 100+i, core.StreamID(i%2), i)
	}
	return st, cands
}

func TestLadderWalksRungsInOrder(t *testing.T) {
	r1 := &failingRung{name: "A", fails: 2, err: ErrSolverBudget}
	r2 := &failingRung{name: "B", fails: 1, err: ErrModelDiverged}
	var seen []Downgrade
	lad := &Ladder{Rungs: []join.Policy{r1, r2}, OnDowngrade: func(d Downgrade) { seen = append(seen, d) }}
	lad.Reset(join.Config{CacheSize: 3}, stats.NewRNG(1))

	st, cands := ladderState(4)

	// Decision 1: A fails, B fails → built-in Lfixed (oldest first: index 0).
	got := lad.Evict(st, cands, 1)
	if got[0] != 0 {
		t.Fatalf("decision 1 = %v, want the built-in oldest-first choice [0]", got)
	}
	// Decision 2: A fails, B succeeds (newest first).
	got = lad.Evict(st, cands, 1)
	if got[0] != 3 {
		t.Fatalf("decision 2 = %v, want B's newest-first choice [3]", got)
	}
	// Decision 3: A succeeds.
	got = lad.Evict(st, cands, 1)
	if got[0] != 3 {
		t.Fatalf("decision 3 = %v, want A's newest-first choice [3]", got)
	}

	if c0, c1, c2 := lad.FallbackCount(0), lad.FallbackCount(1), lad.FallbackCount(2); c0 != 2 || c1 != 1 || c2 != 1 {
		t.Fatalf("fallback counts = %d, %d, %d; want 2, 1, 1", c0, c1, c2)
	}
	if len(seen) != 3 {
		t.Fatalf("OnDowngrade fired %d times, want 3", len(seen))
	}
	if seen[0].From != "A" || seen[0].To != "B" || !errors.Is(seen[0].Err, ErrSolverBudget) {
		t.Fatalf("first downgrade %+v", seen[0])
	}
	if seen[1].From != "B" || seen[1].To != "LFIXED" || !errors.Is(seen[1].Err, ErrModelDiverged) {
		t.Fatalf("second downgrade %+v", seen[1])
	}
}

func TestLadderCatchesPanicsAndMalformedSets(t *testing.T) {
	var seen []Downgrade
	lad := &Ladder{
		Rungs:       []join.Policy{panickingRung{}, malformedRung{}},
		OnDowngrade: func(d Downgrade) { seen = append(seen, d) },
	}
	lad.Reset(join.Config{CacheSize: 2}, stats.NewRNG(1))
	st, cands := ladderState(4)

	got := lad.Evict(st, cands, 2)
	if len(got) != 2 || got[0] == got[1] {
		t.Fatalf("ladder returned invalid set %v", got)
	}
	// Oldest two, from the built-in last resort.
	if !(got[0] == 0 && got[1] == 1) && !(got[0] == 1 && got[1] == 0) {
		t.Fatalf("last resort evicted %v, want {0, 1}", got)
	}
	if len(seen) != 2 {
		t.Fatalf("OnDowngrade fired %d times, want 2", len(seen))
	}
	if !errors.Is(seen[0].Err, ErrSolverFailed) {
		t.Fatalf("panic downgrade carries %v, want ErrSolverFailed", seen[0].Err)
	}
	if !errors.Is(seen[1].Err, ErrInvalidEviction) {
		t.Fatalf("malformed downgrade carries %v, want ErrInvalidEviction", seen[1].Err)
	}
}

func TestLadderNeverFailsUnderTotalFailure(t *testing.T) {
	lad := &Ladder{Rungs: []join.Policy{
		&failingRung{name: "X", fails: 1 << 30, err: ErrSolverFailed},
		panickingRung{},
	}}
	lad.Reset(join.Config{CacheSize: 1}, stats.NewRNG(1))
	st, cands := ladderState(5)
	for k := 0; k < 50; k++ {
		got := lad.Evict(st, cands, 3)
		if len(got) != 3 {
			t.Fatalf("decision %d returned %v", k, got)
		}
	}
	if lad.FallbackCount(len(lad.Rungs)) != 50 {
		t.Fatalf("last-resort count = %d, want 50", lad.FallbackCount(len(lad.Rungs)))
	}
}

func TestLfixedEvictsOldest(t *testing.T) {
	p := &Lfixed{}
	p.Reset(join.Config{}, nil)
	_, cands := ladderState(5)
	got := p.Evict(nil, cands, 2)
	want := map[int]bool{0: true, 1: true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] || got[0] == got[1] {
		t.Fatalf("Lfixed evicted %v, want the two oldest {0, 1}", got)
	}
}

func TestDefaultLadderName(t *testing.T) {
	lad := NewDefaultLadder(5, 0, HEEBOptions{Mode: HEEBDirect})
	if got := lad.Name(); got != "LADDER(FLOWEXPECT→HEEB→LFIXED)" {
		t.Fatalf("Name() = %q", got)
	}
	names := lad.RungNames()
	if len(names) != 4 || names[3] != "LFIXED" {
		t.Fatalf("RungNames() = %v", names)
	}
}
