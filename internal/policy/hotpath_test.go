package policy

import (
	"sort"
	"testing"
	"testing/quick"

	"stochstream/internal/core"
	"stochstream/internal/dist"
	"stochstream/internal/join"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// evictLowestSort is the seed implementation of victim selection — a full
// stable sort — kept as the reference the heap-based evictLowest is checked
// against.
func evictLowestSort(scores []float64, cands []join.Tuple, n int) []int {
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] < scores[idx[b]]
		}
		return cands[idx[a]].ID < cands[idx[b]].ID
	})
	if n > len(idx) {
		n = len(idx)
	}
	return append([]int(nil), idx[:n]...)
}

// Property: the heap-based top-k selection returns exactly the full sort's
// first n entries, in the same order, across random score vectors with
// plenty of ties.
func TestEvictLowestMatchesSortReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := 1 + rng.IntN(40)
		n := rng.IntN(m + 2) // occasionally n > m
		cands := make([]join.Tuple, m)
		scores := make([]float64, m)
		for i := range cands {
			cands[i] = join.Tuple{ID: i, Value: rng.IntN(10), Arrived: i / 2}
			// Coarse quantization forces frequent score ties.
			scores[i] = float64(rng.IntN(5))
		}
		got := evictLowest(scores, cands, n)
		want := evictLowestSort(scores, cands, n)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// heebDecision builds a mid-run decision state: populated histories and a
// candidate set drawn from both streams.
func heebDecision(t *testing.T, seed uint64, window, band, n int) (*join.State, []join.Tuple) {
	t.Helper()
	procs := [2]process.Process{
		&process.LinearTrend{Slope: 1, Intercept: -1, Noise: dist.BoundedNormal(2, 9)},
		&process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(2, 11)},
	}
	rng := stats.NewRNG(seed)
	hists := [2]*process.History{
		process.NewHistory(procs[0].Generate(rng.Split(), 60)...),
		process.NewHistory(procs[1].Generate(rng.Split(), 60)...),
	}
	st := &join.State{
		Time:   59,
		Hists:  hists,
		Config: join.Config{CacheSize: n - 2, Window: window, Band: band, Procs: procs},
		RNG:    stats.NewRNG(seed + 1),
	}
	cands := make([]join.Tuple, n)
	for i := range cands {
		cands[i] = join.Tuple{
			ID:      i,
			Value:   40 + rng.IntN(30),
			Stream:  core.StreamID(i % 2),
			Arrived: 30 + rng.IntN(30),
		}
	}
	return st, cands
}

// The memoized scorer (forecast cache + L table) must score and evict
// bitwise-identically to the seed path (NoMemo) across window/band configs
// and scoring modes.
func TestHEEBMemoMatchesNoMemo(t *testing.T) {
	for _, tc := range []struct {
		name         string
		window, band int
		mode         HEEBMode
		prefilter    bool
	}{
		{"direct-equi", 0, 0, HEEBDirect, false},
		{"direct-band", 0, 3, HEEBDirect, false},
		{"direct-window", 24, 0, HEEBDirect, false},
		{"direct-window-band", 16, 2, HEEBDirect, false},
		{"incremental", 0, 1, HEEBIncremental, false},
		{"value-incremental", 0, 0, HEEBValueIncremental, false},
		{"direct-prefilter", 0, 0, HEEBDirect, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, cands := heebDecision(t, 11, tc.window, tc.band, 34)
			mk := func(noMemo bool) *HEEB {
				p := NewHEEB(HEEBOptions{
					Mode:               tc.mode,
					LifetimeEstimate:   6,
					DominancePrefilter: tc.prefilter,
					NoMemo:             noMemo,
				})
				p.Reset(st.Config, stats.NewRNG(3))
				return p
			}
			opt, ref := mk(false), mk(true)
			optScores := opt.ScoreCandidates(st, cands)
			refScores := ref.ScoreCandidates(st, cands)
			for i := range cands {
				if optScores[i] != refScores[i] {
					t.Fatalf("cand %d: memo score %v != reference %v", i, optScores[i], refScores[i])
				}
			}
			optEvict := opt.Evict(st, cands, 4)
			refEvict := ref.Evict(st, cands, 4)
			if len(optEvict) != len(refEvict) {
				t.Fatalf("evict lengths differ: %v vs %v", optEvict, refEvict)
			}
			for i := range optEvict {
				if optEvict[i] != refEvict[i] {
					t.Fatalf("evict[%d]: memo %d != reference %d", i, optEvict[i], refEvict[i])
				}
			}
		})
	}
}

// The parallel scorer must produce the same scores and the same eviction
// choice as the serial scorer; this test also runs under -race in CI,
// exercising the prewarmed read-only forecast cache contract.
func TestHEEBParallelScoringMatchesSerial(t *testing.T) {
	for _, band := range []int{0, 2} {
		st, cands := heebDecision(t, 23, 0, band, 200)
		mk := func(parallel bool) *HEEB {
			p := NewHEEB(HEEBOptions{
				Mode:              HEEBDirect,
				LifetimeEstimate:  8,
				Parallel:          parallel,
				ParallelThreshold: 1, // force the parallel path
				ParallelWorkers:   8,
			})
			p.Reset(st.Config, stats.NewRNG(3))
			return p
		}
		par, ser := mk(true), mk(false)
		ps := par.ScoreCandidates(st, cands)
		ss := ser.ScoreCandidates(st, cands)
		for i := range cands {
			if ps[i] != ss[i] {
				t.Fatalf("band %d cand %d: parallel %v != serial %v", band, i, ps[i], ss[i])
			}
		}
		pe := par.Evict(st, cands, 6)
		se := ser.Evict(st, cands, 6)
		if len(pe) != len(se) {
			t.Fatalf("band %d: evict lengths differ: %v vs %v", band, pe, se)
		}
		for i := range pe {
			if pe[i] != se[i] {
				t.Fatalf("band %d: parallel evict %v != serial %v", band, pe, se)
			}
		}
	}
}

// Small-candidate decisions must stay serial even with Parallel set: the
// threshold gate keeps goroutine fan-out off the common path, and the
// incremental modes must never fan out (they mutate per-tuple state).
func TestHEEBParallelThresholdGate(t *testing.T) {
	st, _ := heebDecision(t, 5, 0, 0, 10)
	p := NewHEEB(HEEBOptions{Mode: HEEBDirect, LifetimeEstimate: 4, Parallel: true})
	p.Reset(st.Config, stats.NewRNG(1))
	if p.parallelApplicable(DefaultParallelThreshold - 1) {
		t.Fatalf("parallel path chosen below default threshold %d", DefaultParallelThreshold)
	}
	if !p.parallelApplicable(DefaultParallelThreshold) {
		t.Fatal("parallel path not chosen at threshold")
	}
	pi := NewHEEB(HEEBOptions{Mode: HEEBIncremental, LifetimeEstimate: 4, Parallel: true, ParallelThreshold: 1})
	pi.Reset(st.Config, stats.NewRNG(1))
	if pi.parallelApplicable(1000) {
		t.Fatal("parallel path chosen for incremental mode")
	}
}
