package policy

import (
	"errors"
	"fmt"
	"strings"

	"stochstream/internal/flightrec"
	"stochstream/internal/join"
	"stochstream/internal/stats"
)

// Lfixed is the bottom rung of the degradation ladder: a model-free,
// allocation-light, panic-free policy that evicts the oldest candidates
// first (FIFO over arrival IDs). It consults no model, no solver and no
// randomness, so it cannot fail — which is exactly what the last rung of a
// fault-tolerant operator needs. Under sliding-window semantics oldest-first
// coincides with evicting the tuples closest to expiry.
type Lfixed struct {
	scores []float64
}

// Name implements join.Policy.
func (p *Lfixed) Name() string { return "LFIXED" }

// Reset implements join.Policy.
func (p *Lfixed) Reset(join.Config, *stats.RNG) {}

// Evict implements join.Policy: the n smallest arrival IDs are discarded.
func (p *Lfixed) Evict(_ *join.State, cands []join.Tuple, n int) []int {
	if cap(p.scores) < len(cands) {
		p.scores = make([]float64, len(cands))
	}
	scores := p.scores[:len(cands)]
	for i, c := range cands {
		scores[i] = float64(c.ID)
	}
	return evictLowest(scores, cands, n)
}

// Downgrade describes one ladder fallback: the decision step, the rung that
// failed, the rung that took over, and why. The engine's telemetry wiring
// turns these into per-rung counters and trace records.
type Downgrade struct {
	Step int
	// From is the name of the rung that failed; To the rung tried next ("" on
	// the final built-in last resort).
	From, To string
	// Err is the taxonomy error the failed rung reported.
	Err error
}

// Ladder chains policies from most sophisticated to most robust and degrades
// per decision: each replacement decision walks the rungs in order and uses
// the first one that produces a valid eviction set. Rungs implementing
// Fallible fail softly via TryEvict; other rungs are guarded with a panic
// recovery so a buggy or model-poisoned policy downgrades one decision
// instead of crashing the operator. If every rung fails, a built-in
// oldest-first eviction (the Lfixed rule) decides — the ladder never fails
// and never panics.
//
// The canonical production ladder is FlowExpect → HEEB → Lfixed
// (NewDefaultLadder); any rung list works. Determinism: each rung gets its
// own Split of the reset RNG, and the walk order is fixed, so a run with a
// given fault pattern replays identically.
type Ladder struct {
	// Rungs are tried in order; the slice is not copied.
	Rungs []join.Policy
	// OnDowngrade, when non-nil, is called for every rung failure, in
	// decision order. Used by the engine to feed telemetry counters and the
	// downgrade trace.
	OnDowngrade func(Downgrade)
	// Flight, when non-nil, records every rung attempt as a PhaseRung child
	// span of the current step — successful attempts end clean, failed ones
	// carry the taxonomy error class — so a downgrade is attributable to the
	// exact rung (and, via PhaseSolve children, the exact solver event)
	// inside the exact step. The engine wires this from Config.Flight.
	Flight *flightrec.Recorder

	fallbacks []uint64
	lastRung  int
	lfixed    Lfixed //lint:ignore snapcomplete terminal rung, reset from config; it carries no cross-decision state of its own
	seen      []bool //lint:ignore snapcomplete per-decision validation scratch, rebuilt by checkEviction each call
}

// NewDefaultLadder returns the canonical FlowExpect → HEEB → Lfixed ladder.
// lookahead and solverBudget configure the FlowExpect rung; heebOpts the HEEB
// rung.
func NewDefaultLadder(lookahead int, solverBudget int64, heebOpts HEEBOptions) *Ladder {
	return &Ladder{Rungs: []join.Policy{
		&FlowExpect{Lookahead: lookahead, SolverBudget: solverBudget},
		NewHEEB(heebOpts),
		&Lfixed{},
	}}
}

// Name implements join.Policy.
func (p *Ladder) Name() string {
	names := make([]string, len(p.Rungs))
	for i, r := range p.Rungs {
		names[i] = r.Name()
	}
	return "LADDER(" + strings.Join(names, "→") + ")"
}

// Reset implements join.Policy. Every rung receives an independent Split of
// the run RNG, so a downgrade on one decision never perturbs another rung's
// random stream.
func (p *Ladder) Reset(cfg join.Config, rng *stats.RNG) {
	p.fallbacks = make([]uint64, len(p.Rungs)+1)
	p.lastRung = 0
	for _, r := range p.Rungs {
		var child *stats.RNG
		if rng != nil {
			child = rng.Split()
		}
		r.Reset(cfg, child)
	}
	p.lfixed.Reset(cfg, nil)
}

// Evict implements join.Policy. It always returns a valid eviction set.
func (p *Ladder) Evict(st *join.State, cands []join.Tuple, n int) []int {
	for i, rung := range p.Rungs {
		var sp flightrec.Active
		if p.Flight != nil {
			sp = p.Flight.BeginLabel(flightrec.PhaseRung, rung.Name())
		}
		evict, err := p.tryRung(rung, st, cands, n)
		if err == nil {
			p.seen, err = checkEviction(evict, len(cands), n, p.seen)
		}
		if err == nil {
			if p.Flight != nil {
				p.Flight.End(sp, len(cands), int64(n))
			}
			p.lastRung = i
			return evict
		}
		if p.Flight != nil {
			p.Flight.Fail(sp, len(cands), int64(n), flightErrClass(err))
		}
		p.fallbacks[i]++
		if p.OnDowngrade != nil {
			to := ""
			if i+1 < len(p.Rungs) {
				to = p.Rungs[i+1].Name()
			} else {
				to = p.lfixed.Name()
			}
			p.OnDowngrade(Downgrade{Step: st.Time, From: rung.Name(), To: to, Err: err})
		}
	}
	// Last resort: the built-in Lfixed rule, which cannot fail.
	p.fallbacks[len(p.Rungs)]++
	p.lastRung = len(p.Rungs)
	if p.Flight != nil {
		sp := p.Flight.BeginLabel(flightrec.PhaseRung, p.lfixed.Name())
		evict := p.lfixed.Evict(st, cands, n)
		p.Flight.End(sp, len(cands), int64(n))
		return evict
	}
	return p.lfixed.Evict(st, cands, n)
}

// flightErrClass maps rung-failure errors to static taxonomy strings for
// span records, so a failed attempt allocates nothing for its label.
func flightErrClass(err error) string {
	switch {
	case errors.Is(err, ErrModelDiverged):
		return "model-diverged"
	case errors.Is(err, ErrSolverBudget):
		return "solver-budget"
	case errors.Is(err, ErrSolverFailed):
		return "solver-failed"
	case errors.Is(err, ErrInvalidEviction):
		return "invalid-eviction"
	default:
		return "error"
	}
}

// tryRung runs one rung, converting panics from non-Fallible rungs into
// taxonomy errors so the ladder can keep degrading.
func (p *Ladder) tryRung(rung join.Policy, st *join.State, cands []join.Tuple, n int) (evict []int, err error) {
	if f, ok := rung.(Fallible); ok {
		return f.TryEvict(st, cands, n)
	}
	defer func() {
		if r := recover(); r != nil {
			evict, err = nil, fmt.Errorf("%w: rung %s panicked: %v", ErrSolverFailed, rung.Name(), r)
		}
	}()
	return rung.Evict(st, cands, n), nil
}

// ScoreCandidates implements telemetry.CandidateScorer by delegating to the
// rung that made the most recent decision, when it can explain itself.
func (p *Ladder) ScoreCandidates(st *join.State, cands []join.Tuple) []float64 {
	if p.lastRung < len(p.Rungs) {
		if s, ok := p.Rungs[p.lastRung].(interface {
			ScoreCandidates(*join.State, []join.Tuple) []float64
		}); ok {
			return s.ScoreCandidates(st, cands)
		}
	}
	return make([]float64, len(cands))
}

// FallbackCount returns how many decisions fell past rung i (the count of
// failures of rung i). Index len(Rungs) counts decisions that exhausted every
// rung and used the built-in last resort.
func (p *Ladder) FallbackCount(i int) uint64 {
	if i < 0 || i >= len(p.fallbacks) {
		return 0
	}
	return p.fallbacks[i]
}

// RungNames returns the rung names in ladder order, with the built-in last
// resort appended — index-aligned with FallbackCount.
func (p *Ladder) RungNames() []string {
	names := make([]string, 0, len(p.Rungs)+1)
	for _, r := range p.Rungs {
		names = append(names, r.Name())
	}
	return append(names, p.lfixed.Name())
}
