package modelsel_test

import (
	"fmt"

	"stochstream/internal/dist"
	"stochstream/internal/modelsel"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// Detecting the model class of an observed stream prefix.
func ExampleDetect() {
	truth := &process.LinearTrend{Slope: 3, Intercept: 0, Noise: dist.BoundedNormal(2, 9)}
	series := truth.Generate(stats.NewRNG(11), 400)
	rep, err := modelsel.Detect(series)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(rep.Kind)
	fmt.Printf("slope %.1f\n", rep.Trend.Slope)
	// Output:
	// linear-trend
	// slope 3.0
}

// A random walk must not be mistaken for a deterministic trend: its OLS
// residuals are heavily autocorrelated, which vetoes the trend branch.
func ExampleDetect_randomWalk() {
	walk := &process.GaussianWalk{Drift: 0, Sigma: 1}
	series := walk.Generate(stats.NewRNG(12), 1500)
	rep, err := modelsel.Detect(series)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(rep.Kind)
	// Output:
	// random-walk
}
