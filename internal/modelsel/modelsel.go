// Package modelsel identifies the statistical properties of an observed
// stream prefix and returns a fitted Process for HEEB to exploit. The paper
// treats identifying input statistics as an orthogonal problem ("time series
// data analysis is an established field"); this package provides the
// pragmatic decision procedure a deployment needs, covering exactly the
// model classes the paper's framework analyzes: stationary independent,
// linear trend with i.i.d. noise, random walk with drift, and AR(1).
//
// The decision tree:
//
//  1. Fit an OLS trend. A high R² with weakly autocorrelated residuals is a
//     deterministic trend (spurious regressions on random walks leave
//     heavily autocorrelated residuals, which rules them out here).
//  2. Otherwise fit AR(1). φ₁ near one is a random walk with drift; a
//     moderate φ₁ is AR(1); φ₁ near zero is a stationary stream, modeled by
//     its empirical histogram.
package modelsel

import (
	"fmt"
	"math"

	"stochstream/internal/dist"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// Kind is the detected model class.
type Kind int

// Model classes, in the order the paper's case studies treat them.
const (
	KindStationary Kind = iota
	KindLinearTrend
	KindRandomWalk
	KindAR1
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindStationary:
		return "stationary"
	case KindLinearTrend:
		return "linear-trend"
	case KindRandomWalk:
		return "random-walk"
	case KindAR1:
		return "ar1"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Thresholds tunes the decision procedure; the zero value selects the
// defaults below.
type Thresholds struct {
	// TrendR2 is the minimum OLS R² to consider a deterministic trend
	// (default 0.5).
	TrendR2 float64
	// TrendResidualAutocorr is the maximum lag-1 residual autocorrelation
	// compatible with i.i.d. trend noise (default 0.5).
	TrendResidualAutocorr float64
	// WalkPhi1 is the minimum AR(1) coefficient treated as a unit root
	// (default 0.93).
	WalkPhi1 float64
	// AR1Phi1 is the minimum |φ₁| treated as genuine autoregression rather
	// than a stationary stream (default 0.25).
	AR1Phi1 float64
	// MinLen is the minimum series length (default 30).
	MinLen int
}

func (t Thresholds) withDefaults() Thresholds {
	if t.TrendR2 == 0 {
		t.TrendR2 = 0.5
	}
	if t.TrendResidualAutocorr == 0 {
		t.TrendResidualAutocorr = 0.5
	}
	if t.WalkPhi1 == 0 {
		t.WalkPhi1 = 0.93
	}
	if t.AR1Phi1 == 0 {
		t.AR1Phi1 = 0.25
	}
	if t.MinLen == 0 {
		t.MinLen = 30
	}
	return t
}

// Report is the outcome of model detection.
type Report struct {
	Kind Kind
	// Proc is the fitted process, ready for forecasting and HEEB.
	Proc process.Process
	// Trend carries the OLS fit (meaningful for KindLinearTrend).
	Trend stats.LinearFit
	// AR carries the AR(1) fit (meaningful for KindAR1 and KindRandomWalk,
	// where it describes the differenced drift/variance via Phi0/Sigma).
	AR stats.AR1Fit
	// ResidualAutocorr is the lag-1 autocorrelation of the OLS residuals.
	ResidualAutocorr float64
}

// Describe returns a one-line human-readable summary.
func (r Report) Describe() string {
	switch r.Kind {
	case KindLinearTrend:
		return fmt.Sprintf("linear trend: slope %.3f/step, R² %.2f", r.Trend.Slope, r.Trend.R2)
	case KindRandomWalk:
		return fmt.Sprintf("random walk: drift %.3f, step σ %.3f", r.AR.Phi0, r.AR.Sigma)
	case KindAR1:
		return fmt.Sprintf("AR(1): X_t = %.3f + %.3f·X_{t-1} + N(0, %.2f²)", r.AR.Phi0, r.AR.Phi1, r.AR.Sigma)
	default:
		return "stationary independent stream (empirical distribution)"
	}
}

// Rebase returns the detected process with its time origin moved forward by
// offset steps — for replaying a stream segment that starts offset
// observations after the fitted prefix began, on a simulator clock that
// restarts at zero. Trend models shift their intercepts; stationary and
// Markov models are time-invariant and returned unchanged.
func (r Report) Rebase(offset int) process.Process {
	switch p := r.Proc.(type) {
	case *process.LinearTrend:
		return &process.LinearTrend{
			Slope:     p.Slope,
			Intercept: p.Intercept + p.Slope*offset,
			Noise:     p.Noise,
		}
	case *process.GeneralTrend:
		f := p.F
		return &process.GeneralTrend{
			F:     func(t int) int { return f(t + offset) },
			Noise: p.Noise,
		}
	default:
		return r.Proc
	}
}

// Detect identifies the model class of the observed series with default
// thresholds.
func Detect(series []int) (Report, error) {
	return DetectWith(series, Thresholds{})
}

// DetectWith runs the decision procedure with explicit thresholds.
func DetectWith(series []int, th Thresholds) (Report, error) {
	th = th.withDefaults()
	if len(series) < th.MinLen {
		return Report{}, fmt.Errorf("modelsel: need at least %d observations, have %d", th.MinLen, len(series))
	}
	f := make([]float64, len(series))
	for i, v := range series {
		f[i] = float64(v)
	}
	trend := stats.FitLinear(f)
	resid := trend.Residuals(f)
	rho := stats.Autocorrelation(resid, 1)
	rep := Report{Trend: trend, ResidualAutocorr: rho}

	// 1. Deterministic trend with (nearly) independent noise.
	if trend.R2 >= th.TrendR2 && math.Abs(rho) <= th.TrendResidualAutocorr && math.Abs(trend.Slope) > 1e-6 {
		rep.Kind = KindLinearTrend
		rep.Proc = trendProcess(trend, resid)
		return rep, nil
	}

	// 2. Autoregressive family.
	fit, err := stats.FitAR1Int(series)
	if err != nil {
		return Report{}, fmt.Errorf("modelsel: %w", err)
	}
	rep.AR = fit
	switch {
	case fit.Phi1 >= th.WalkPhi1:
		diffs := stats.Diffs(series)
		var sum stats.Summary
		for _, d := range diffs {
			sum.Add(d)
		}
		// Re-express the walk through its differences: drift and step σ.
		rep.AR = stats.AR1Fit{Phi0: sum.Mean(), Phi1: 1, Sigma: sum.StdDev(), N: sum.N()}
		rep.Kind = KindRandomWalk
		rep.Proc = &process.GaussianWalk{
			Drift: sum.Mean(),
			Sigma: math.Max(sum.StdDev(), 1e-6),
			Init:  series[len(series)-1],
		}
	case math.Abs(fit.Phi1) >= th.AR1Phi1 && math.Abs(fit.Phi1) < 1:
		rep.Kind = KindAR1
		rep.Proc = &process.AR1{
			Phi0:  fit.Phi0,
			Phi1:  fit.Phi1,
			Sigma: math.Max(fit.Sigma, 1e-6),
			Init:  series[len(series)-1],
		}
	default:
		rep.Kind = KindStationary
		rep.Proc = &process.Stationary{P: dist.Empirical(series)}
	}
	return rep, nil
}

// trendProcess builds a trend model with the residuals' empirical noise.
// Integer slopes map onto LinearTrend (unlocking Corollary 5's
// value-incremental computation); fractional slopes use GeneralTrend.
func trendProcess(trend stats.LinearFit, resid []float64) process.Process {
	noiseVals := make([]int, len(resid))
	for i, r := range resid {
		noiseVals[i] = int(math.Round(r))
	}
	noise := dist.Empirical(noiseVals)
	slope := math.Round(trend.Slope)
	if math.Abs(trend.Slope-slope) < 0.02 && slope != 0 {
		return &process.LinearTrend{
			Slope:     int(slope),
			Intercept: int(math.Round(trend.Intercept)),
			Noise:     noise,
		}
	}
	a, b := trend.Intercept, trend.Slope
	return &process.GeneralTrend{
		F:     func(t int) int { return int(math.Round(a + b*float64(t))) },
		Noise: noise,
	}
}
