package modelsel

import (
	"math"
	"testing"

	"stochstream/internal/dist"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func TestDetectStationary(t *testing.T) {
	p := &process.Stationary{P: dist.NewTable(0, []float64{5, 3, 2})}
	series := p.Generate(stats.NewRNG(1), 2000)
	rep, err := Detect(series)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindStationary {
		t.Fatalf("Kind = %v (%s)", rep.Kind, rep.Describe())
	}
	// The empirical model reproduces the frequencies.
	f := rep.Proc.Forecast(process.NewHistory(0), 1)
	if got := f.Prob(0); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("Prob(0) = %v, want ~0.5", got)
	}
}

func TestDetectLinearTrend(t *testing.T) {
	p := &process.LinearTrend{Slope: 1, Intercept: 5, Noise: dist.BoundedNormal(2, 10)}
	series := p.Generate(stats.NewRNG(2), 1000)
	rep, err := Detect(series)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindLinearTrend {
		t.Fatalf("Kind = %v (%s)", rep.Kind, rep.Describe())
	}
	if math.Abs(rep.Trend.Slope-1) > 0.02 {
		t.Fatalf("slope = %v", rep.Trend.Slope)
	}
	// Integer slope: a LinearTrend, enabling value-incremental HEEB.
	if _, ok := rep.Proc.(*process.LinearTrend); !ok {
		t.Fatalf("Proc = %T, want *process.LinearTrend", rep.Proc)
	}
	// Forecast mean tracks the trend.
	h := process.NewHistory(series...)
	got := meanOf(rep.Proc.Forecast(h, 5))
	want := float64(1*(999+5) + 5) // slope·(t0+Δ) + intercept
	if math.Abs(got-want) > 3 {
		t.Fatalf("forecast mean %v, want ~%v", got, want)
	}
}

func TestDetectFractionalTrendUsesGeneralTrend(t *testing.T) {
	g := &process.GeneralTrend{
		F:     func(tm int) int { return tm / 2 },
		Noise: dist.BoundedNormal(1.5, 8),
	}
	series := g.Generate(stats.NewRNG(3), 1000)
	rep, err := Detect(series)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindLinearTrend {
		t.Fatalf("Kind = %v (%s)", rep.Kind, rep.Describe())
	}
	if _, ok := rep.Proc.(*process.GeneralTrend); !ok {
		t.Fatalf("Proc = %T, want *process.GeneralTrend for slope 0.5", rep.Proc)
	}
}

func TestDetectRandomWalk(t *testing.T) {
	p := &process.GaussianWalk{Drift: 0.5, Sigma: 2, Init: 0}
	series := p.Generate(stats.NewRNG(4), 3000)
	rep, err := Detect(series)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindRandomWalk {
		t.Fatalf("Kind = %v (%s)", rep.Kind, rep.Describe())
	}
	w := rep.Proc.(*process.GaussianWalk)
	if math.Abs(w.Drift-0.5) > 0.15 {
		t.Fatalf("drift = %v", w.Drift)
	}
	if math.Abs(w.Sigma-2) > 0.3 {
		t.Fatalf("sigma = %v (rounding inflates slightly)", w.Sigma)
	}
	if w.Init != series[len(series)-1] {
		t.Fatal("walk should start from the last observation")
	}
}

func TestDetectAR1(t *testing.T) {
	p := &process.AR1{Phi0: 20, Phi1: 0.7, Sigma: 5, Init: 66}
	series := p.Generate(stats.NewRNG(5), 4000)
	rep, err := Detect(series)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindAR1 {
		t.Fatalf("Kind = %v (%s)", rep.Kind, rep.Describe())
	}
	ar := rep.Proc.(*process.AR1)
	if math.Abs(ar.Phi1-0.7) > 0.05 {
		t.Fatalf("phi1 = %v", ar.Phi1)
	}
	if math.Abs(ar.Phi0-20) > 4 {
		t.Fatalf("phi0 = %v", ar.Phi0)
	}
}

func TestDetectZeroDriftWalkNotMistakenForTrend(t *testing.T) {
	// Random walks produce spurious OLS trends; residual autocorrelation
	// must veto the trend branch.
	p := &process.GaussianWalk{Drift: 0, Sigma: 1, Init: 0}
	for seed := uint64(10); seed < 16; seed++ {
		series := p.Generate(stats.NewRNG(seed), 2000)
		rep, err := Detect(series)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Kind == KindLinearTrend {
			t.Fatalf("seed %d: walk classified as trend (R²=%.2f ρ=%.2f)",
				seed, rep.Trend.R2, rep.ResidualAutocorr)
		}
		if rep.Kind != KindRandomWalk {
			t.Fatalf("seed %d: Kind = %v", seed, rep.Kind)
		}
	}
}

func TestDetectErrors(t *testing.T) {
	if _, err := Detect([]int{1, 2, 3}); err == nil {
		t.Fatal("short series should error")
	}
	series := make([]int, 100) // constant
	if _, err := Detect(series); err == nil {
		t.Fatal("constant series should error from the AR fit")
	}
}

func TestThresholdDefaults(t *testing.T) {
	th := Thresholds{}.withDefaults()
	if th.TrendR2 != 0.5 || th.WalkPhi1 != 0.93 || th.AR1Phi1 != 0.25 || th.MinLen != 30 {
		t.Fatalf("defaults = %+v", th)
	}
	// Custom thresholds are preserved.
	custom := Thresholds{TrendR2: 0.9, MinLen: 100}.withDefaults()
	if custom.TrendR2 != 0.9 || custom.MinLen != 100 {
		t.Fatalf("custom = %+v", custom)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindStationary: "stationary", KindLinearTrend: "linear-trend",
		KindRandomWalk: "random-walk", KindAR1: "ar1", Kind(7): "Kind(7)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
}

func TestDescribeMentionsParameters(t *testing.T) {
	p := &process.AR1{Phi0: 20, Phi1: 0.7, Sigma: 5, Init: 66}
	series := p.Generate(stats.NewRNG(6), 3000)
	rep, err := Detect(series)
	if err != nil {
		t.Fatal(err)
	}
	if d := rep.Describe(); len(d) == 0 || d[:2] != "AR" {
		t.Fatalf("Describe = %q", d)
	}
}

func meanOf(p dist.PMF) float64 { return dist.Mean(p) }

func TestRebase(t *testing.T) {
	p := &process.LinearTrend{Slope: 2, Intercept: 5, Noise: dist.BoundedNormal(1.5, 8)}
	series := p.Generate(stats.NewRNG(12), 500)
	rep, err := Detect(series)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindLinearTrend {
		t.Fatalf("Kind = %v", rep.Kind)
	}
	// Rebasing by 500: forecasting Δ=1 from an empty-ish history at the new
	// origin should track the trend at original time 500.
	shifted := rep.Rebase(500)
	h := process.NewHistory(0) // t0 = 0 on the new clock
	got := meanOf(shifted.Forecast(h, 1))
	want := float64(2*(500+1) + 5)
	if math.Abs(got-want) > 4 {
		t.Fatalf("rebased forecast mean %v, want ~%v", got, want)
	}
	// Markov models are unchanged by Rebase.
	walk := &process.GaussianWalk{Sigma: 1, Init: 0}
	wSeries := walk.Generate(stats.NewRNG(13), 1000)
	wRep, err := Detect(wSeries)
	if err != nil {
		t.Fatal(err)
	}
	if wRep.Rebase(100) != wRep.Proc {
		t.Fatal("Markov model should be time-invariant under Rebase")
	}
}

func TestRebaseGeneralTrend(t *testing.T) {
	g := &process.GeneralTrend{
		F:     func(tm int) int { return tm / 2 },
		Noise: dist.BoundedNormal(1.5, 8),
	}
	series := g.Generate(stats.NewRNG(14), 800)
	rep, err := Detect(series)
	if err != nil {
		t.Fatal(err)
	}
	gt, ok := rep.Rebase(800).(*process.GeneralTrend)
	if !ok {
		t.Fatalf("rebased type = %T", rep.Rebase(800))
	}
	if got, want := gt.F(0), 400; got < want-3 || got > want+3 {
		t.Fatalf("rebased F(0) = %d, want ~%d", got, want)
	}
}
