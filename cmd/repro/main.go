// Command repro regenerates the paper's evaluation figures.
//
// Usage:
//
//	repro -figure 8                  # one figure at interactive scale
//	repro -figure all -paper         # everything at paper scale
//	repro -figure 6 -chart           # ASCII chart
//	repro -figure 13 -csv            # CSV rows
//	repro -figure 13 -real-data f    # use an actual reference trace
//	repro -figure 8 -metrics         # append a Prometheus telemetry snapshot
//	repro -figure 8 -trace 10        # dump the last 10 eviction decisions
//	repro -checkpoint f -bundle-dir d  # also dump a flight-recorder bundle
//	repro -shards 4 -batch 64        # demo join on the sharded runtime
//	repro -shards 4 -checkpoint f    # sharded checkpoint (restore with -shards 4)
//	repro -list                      # show available figures
//
// Each figure prints the same series the paper plots; EXPERIMENTS.md records
// a reference run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"stochstream"
	"stochstream/internal/engine"
	"stochstream/internal/flightrec"
	"stochstream/internal/process"
	"stochstream/internal/shardrt"
	"stochstream/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// run parses args and executes; separated from main for testing.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	var (
		figure     = fs.String("figure", "", "figure id (6..19, a1, a2) or \"all\"")
		list       = fs.Bool("list", false, "list available figures")
		runs       = fs.Int("runs", 0, "runs per data point (0 = default; paper uses 50)")
		length     = fs.Int("len", 0, "stream length per run (0 = default 5000)")
		cache      = fs.Int("cache", 0, "cache size for fixed-cache figures (0 = default 10)")
		seed       = fs.Uint64("seed", 1, "base seed")
		flowExpect = fs.Bool("flowexpect", false, "include FlowExpect in figure 8 (slow)")
		feRuns     = fs.Int("flowexpect-runs", 0, "FlowExpect runs (0 = default)")
		feLen      = fs.Int("flowexpect-len", 0, "FlowExpect stream length (0 = default)")
		lookahead  = fs.Int("lookahead", 0, "FlowExpect look-ahead for figure 8 (0 = default 5)")
		paper      = fs.Bool("paper", false, "use the paper's full scale (50 runs, FlowExpect on)")
		asCSV      = fs.Bool("csv", false, "emit CSV instead of a text table")
		asChart    = fs.Bool("chart", false, "render an ASCII chart instead of a text table")
		realTrace  = fs.String("real-data", "", "reference trace file for the REAL figures (one value per line or CSV; e.g. the Melbourne temperatures)")
		metrics    = fs.Bool("metrics", false, "emit a Prometheus-text telemetry snapshot (step latencies, policy decisions, solver counters, recent decision traces) after the figures")
		traceN     = fs.Int("trace", 0, "emit the last N decision-trace records as JSON lines (implies telemetry collection)")
		ckptPath   = fs.String("checkpoint", "", "run the checkpoint demo join for -len steps and write its state to FILE (no -figure needed; -seed/-len/-cache apply)")
		restPath   = fs.String("restore", "", "restore the checkpoint demo join from FILE and replay -len further steps (requires the same -seed and -cache the checkpoint was written with)")
		bundleDir  = fs.String("bundle-dir", "", "run the checkpoint demo with the flight recorder attached and dump a diagnostics bundle into DIR at the end (also where fault bundles land if the run crashes)")
		shards     = fs.Int("shards", 0, "run the demo join on the sharded runtime with N hash-partitioned shards instead of one engine (no -figure needed; -seed/-len/-cache/-checkpoint/-restore apply, -cache is the total budget)")
		batchSize  = fs.Int("batch", 64, "ingress batch size (global steps per dispatch) for -shards")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	collect := *metrics || *traceN > 0
	if collect {
		stochstream.EnableTelemetry()
		defer stochstream.DisableTelemetry()
	}

	if *list {
		fmt.Fprintln(stdout, "available figures:")
		for _, id := range stochstream.FigureIDs() {
			fmt.Fprintln(stdout, "  ", id)
		}
		return nil
	}
	if *shards > 0 {
		return runShardedDemo(stdout, *ckptPath, *restPath, *bundleDir, *seed, *length, *cache, *shards, *batchSize)
	}
	if *ckptPath != "" || *restPath != "" || *bundleDir != "" {
		return runCheckpointDemo(stdout, *ckptPath, *restPath, *bundleDir, *seed, *length, *cache)
	}
	if *figure == "" {
		fs.Usage()
		return fmt.Errorf("missing -figure")
	}

	opts := stochstream.DefaultExperimentOptions()
	if *paper {
		opts = stochstream.PaperScaleOptions()
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *length > 0 {
		opts.Length = *length
	}
	if *cache > 0 {
		opts.Cache = *cache
	}
	opts.Seed = *seed
	if *flowExpect {
		opts.FlowExpect = true
	}
	if *feRuns > 0 {
		opts.FlowExpectRuns = *feRuns
	}
	if *feLen > 0 {
		opts.FlowExpectLength = *feLen
	}
	if *lookahead > 0 {
		opts.Lookahead = *lookahead
	}
	opts.RealTracePath = *realTrace

	ids := []string{*figure}
	if *figure == "all" {
		ids = stochstream.FigureIDs()
	}
	for _, id := range ids {
		start := time.Now()
		fig, err := stochstream.GenerateFigure(id, opts)
		if err != nil {
			return err
		}
		switch {
		case *asCSV:
			if err := fig.WriteCSV(stdout); err != nil {
				return err
			}
		case *asChart:
			fig.Chart(stdout, 72, 20)
			fmt.Fprintln(stdout)
		default:
			fig.Render(stdout)
			fmt.Fprintf(stdout, "  [figure %s regenerated in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if collect {
		reg := stochstream.Telemetry()
		if *metrics {
			reg.WritePrometheus(stdout)
			// Recent eviction decisions ride along as comment lines, so one
			// -metrics dump shows both where time went and what the policy
			// chose (and why, via the per-candidate scores).
			n := *traceN
			if n == 0 {
				n = 5
			}
			if err := reg.WriteTrace(stdout, n); err != nil {
				return err
			}
		} else if *traceN > 0 {
			enc := json.NewEncoder(stdout)
			for _, rec := range reg.Trace().Last(*traceN) {
				if err := enc.Encode(rec); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// The checkpoint demo joins two seeded Gaussian-walk streams under the
// default model-based policy, so -checkpoint/-restore exercise the full
// fault-tolerance path (operator state, model histories, policy state, RNG)
// end to end. The streams regenerate deterministically from -seed, so a
// restored run continues exactly where the checkpointed one stopped.
const demoWindow = 64

func demoProcs() [2]process.Process {
	return [2]process.Process{
		&process.GaussianWalk{Sigma: 2},
		&process.GaussianWalk{Sigma: 2, Drift: 0.25},
	}
}

// demoStreams regenerates the first n demo arrivals for a seed. Generation
// is prefix-stable: a longer stream extends a shorter one, which is what
// lets a restored run replay the tail it has not seen yet.
func demoStreams(seed uint64, n int) ([]int, []int) {
	rng := stats.NewRNG(seed)
	procs := demoProcs()
	return procs[0].Generate(rng.Split(), n), procs[1].Generate(rng.Split(), n)
}

func runCheckpointDemo(stdout io.Writer, ckptPath, restPath, bundleDir string, seed uint64, length, cache int) error {
	if length <= 0 {
		length = 2000
	}
	if cache <= 0 {
		cache = 10
	}
	cfg := engine.Config{
		CacheSize: cache,
		Window:    demoWindow,
		Procs:     demoProcs(),
		Seed:      seed,
	}
	if bundleDir != "" {
		// Attach the flight recorder so the demo run carries its own black
		// box: step-phase spans and tuple lifecycles accumulate as it runs,
		// and any invariant failure or recovered panic dumps a bundle into
		// bundleDir on its own. SampleEvery 1 tracks every key — the demo is
		// short enough that the fixed lifecycle budget is the only cap.
		cfg.Flight = flightrec.New(flightrec.Options{
			BundleDir:   bundleDir,
			SampleEvery: 1,
		})
	}
	j, err := engine.NewJoin(cfg)
	if err != nil {
		return err
	}
	start := 0
	if restPath != "" {
		f, err := os.Open(restPath)
		if err != nil {
			return err
		}
		err = j.Restore(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("restore %s: %w", restPath, err)
		}
		start = j.Metrics().Steps
		fmt.Fprintf(stdout, "restored %s: resuming at step %d\n", restPath, start)
	}
	r, s := demoStreams(seed, start+length)
	for i := start; i < start+length; i++ {
		if _, err := j.StepChecked(engine.Tuple{Key: r[i]}, engine.Tuple{Key: s[i]}); err != nil {
			return fmt.Errorf("step %d: %w", i, err)
		}
	}
	m := j.Metrics()
	fmt.Fprintf(stdout, "demo join (cache %d, window %d, seed %d): steps %d  pairs %d  evictions %d  expired %d  cached %d\n",
		cache, demoWindow, seed, m.Steps, m.Pairs, m.Evictions, m.Expired, m.CacheLen)
	if ckptPath != "" {
		f, err := os.Create(ckptPath)
		if err != nil {
			return err
		}
		if err := j.Checkpoint(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "checkpoint written to %s (resume with -restore %s)\n", ckptPath, ckptPath)
	}
	if bundleDir != "" {
		dir, err := j.DumpBundle("signal")
		if err != nil {
			return err
		}
		// Load it back through the public loader so the summary the user
		// sees is what a later `flightrec.LoadBundle` will see, not what we
		// think we wrote.
		b, err := flightrec.LoadBundle(dir)
		if err != nil {
			return fmt.Errorf("verifying bundle %s: %w", dir, err)
		}
		fmt.Fprintf(stdout, "bundle written to %s: reason %q  step %d  spans %d (of %d recorded)  tracked keys %d  checkpoint %d bytes\n",
			dir, b.Manifest.Reason, b.Manifest.Step, b.Manifest.Spans, b.Manifest.SpansTotal, b.Manifest.TrackedKeys, len(b.Checkpoint))
	}
	return nil
}

// runShardedDemo is the checkpoint demo on the sharded runtime: the same
// seeded Gaussian-walk streams, hash-partitioned across -shards engines and
// fed through batched ingress. -checkpoint/-restore go through the sharded
// manifest, so a restore needs the same -shards/-cache/-seed the checkpoint
// was written with; -bundle-dir attaches a flight recorder per shard
// (bundles land under DIR/shard-<i>/ on downgrades or faults).
func runShardedDemo(stdout io.Writer, ckptPath, restPath, bundleDir string, seed uint64, length, cache, shards, batch int) error {
	if batch <= 0 {
		return fmt.Errorf("-batch must be positive, got %d", batch)
	}
	if length <= 0 {
		length = 2000
	}
	if cache <= 0 {
		cache = 10
	}
	cfg := shardrt.Config{
		Shards:     shards,
		TotalCache: cache,
		Window:     demoWindow,
		Procs:      demoProcs(),
		Seed:       seed,
	}
	if bundleDir != "" {
		cfg.Flight = true
		cfg.FlightDir = bundleDir
		cfg.FlightSampleEvery = 1
	}
	rt, err := shardrt.New(cfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	start := 0
	if restPath != "" {
		f, err := os.Open(restPath)
		if err != nil {
			return err
		}
		err = rt.Restore(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("restore %s: %w", restPath, err)
		}
		start = rt.Metrics().Ingested
		fmt.Fprintf(stdout, "restored %s: resuming at step %d\n", restPath, start)
	}
	r, s := demoStreams(seed, start+length)
	for lo := start; lo < start+length; lo += batch {
		hi := lo + batch
		if hi > start+length {
			hi = start + length
		}
		steps := make([]shardrt.Step, 0, hi-lo)
		for t := lo; t < hi; t++ {
			steps = append(steps, shardrt.Step{R: engine.Tuple{Key: r[t]}, S: engine.Tuple{Key: s[t]}})
		}
		if _, err := rt.IngestBatch(steps); err != nil {
			return fmt.Errorf("batch at step %d: %w", lo, err)
		}
	}
	if err := rt.CheckInvariants(); err != nil {
		return err
	}
	m := rt.Metrics()
	fmt.Fprintf(stdout, "sharded demo join (shards %d, total cache %d, window %d, seed %d, batch %d): steps %d  batches %d  pairs %d  rebalances %d\n",
		shards, cache, demoWindow, seed, batch, m.Ingested, m.Batches, m.Pairs, m.Rebalances)
	for _, sm := range m.Shards {
		fmt.Fprintf(stdout, "  shard %d: budget %d  steps %d  pairs %d  evictions %d  expired %d  cached %d\n",
			sm.Shard, sm.Budget, sm.Engine.Steps, sm.Engine.Pairs, sm.Engine.Evictions, sm.Engine.Expired, sm.Engine.CacheLen)
	}
	if ckptPath != "" {
		f, err := os.Create(ckptPath)
		if err != nil {
			return err
		}
		if err := rt.Checkpoint(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "sharded checkpoint written to %s (resume with -shards %d -restore %s)\n", ckptPath, shards, ckptPath)
	}
	return nil
}
