package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stochstream/internal/flightrec"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"6", "19", "a1", "a2"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %q:\n%s", id, out)
		}
	}
}

func TestRunMissingFigure(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("missing -figure should error")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-figure", "999"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown figure should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestRunFigure7AllFormats(t *testing.T) {
	var table, csvOut, chart bytes.Buffer
	if err := run([]string{"-figure", "7"}, &table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "TOWER") || !strings.Contains(table.String(), "regenerated") {
		t.Fatalf("table output:\n%s", table.String())
	}
	if err := run([]string{"-figure", "7", "-csv"}, &csvOut); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvOut.String(), "value,TOWER,ROOF,FLOOR") {
		t.Fatalf("csv header: %q", strings.SplitN(csvOut.String(), "\n", 2)[0])
	}
	if err := run([]string{"-figure", "7", "-chart"}, &chart); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart.String(), "o=TOWER") {
		t.Fatalf("chart output:\n%s", chart.String())
	}
}

func TestRunFigure6WithFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-figure", "6", "-cache", "5", "-seed", "3", "-runs", "1", "-len", "100"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "drift=4") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunMetricsFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-figure", "8", "-metrics", "-runs", "1", "-len", "300"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The acceptance surface: step-latency buckets, policy-labeled metrics
	// and at least one decision-trace record with per-candidate scores.
	for _, want := range []string{
		"# TYPE join_step_latency_ns histogram",
		"join_step_latency_ns_bucket",
		"join_steps_total",
		`policy_decisions_total{policy="HEEB"}`,
		"# decision_trace ",
		`"policy":"HEEB"`,
		`"score":`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("-metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-figure", "8", "-trace", "3", "-runs", "1", "-len", "300"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "# TYPE") {
		t.Fatal("-trace alone must not dump the full metric set")
	}
	jsonLines := 0
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, `{"step":`) {
			jsonLines++
		}
	}
	if jsonLines == 0 || jsonLines > 3 {
		t.Fatalf("trace lines = %d, want 1..3:\n%s", jsonLines, out)
	}
}

func TestRunRealDataFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString("1981-01-01,")
		sb.WriteString([]string{"14.5", "15.2", "16.8", "13.9", "17.4"}[i%5])
		sb.WriteString("\n")
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-figure", "13", "-real-data", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "user trace") {
		t.Fatalf("title should mention the trace:\n%s", buf.String())
	}
	// Missing file propagates as an error.
	if err := run([]string{"-figure", "13", "-real-data", filepath.Join(dir, "missing")}, &buf); err == nil {
		t.Fatal("missing trace file should error")
	}
}

func TestRunCheckpointRestoreFlags(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "demo.ckpt")

	// Phase 1: 300 steps, checkpoint.
	var first bytes.Buffer
	if err := run([]string{"-checkpoint", ckpt, "-len", "300", "-seed", "5", "-cache", "8"}, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "steps 300") || !strings.Contains(first.String(), "checkpoint written") {
		t.Fatalf("checkpoint run output:\n%s", first.String())
	}

	// Phase 2: restore and replay 200 more steps.
	var resumed bytes.Buffer
	if err := run([]string{"-restore", ckpt, "-len", "200", "-seed", "5", "-cache", "8"}, &resumed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed.String(), "resuming at step 300") {
		t.Fatalf("restore run output:\n%s", resumed.String())
	}

	// Reference: 500 uninterrupted steps. Its metrics line must match the
	// resumed run's exactly — the checkpoint cycle is invisible.
	var full bytes.Buffer
	if err := run([]string{"-checkpoint", filepath.Join(dir, "full.ckpt"), "-len", "500", "-seed", "5", "-cache", "8"}, &full); err != nil {
		t.Fatal(err)
	}
	metricsLine := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "demo join") {
				return line
			}
		}
		return ""
	}
	got, want := metricsLine(resumed.String()), metricsLine(full.String())
	if got == "" || got != want {
		t.Fatalf("resumed metrics %q, uninterrupted metrics %q", got, want)
	}
}

func TestRunBundleDirFlag(t *testing.T) {
	dir := t.TempDir()
	bundles := filepath.Join(dir, "bundles")

	// -bundle-dir alone runs the demo join with the recorder attached and
	// dumps a "signal" bundle at the end.
	var buf bytes.Buffer
	if err := run([]string{"-bundle-dir", bundles, "-len", "200", "-seed", "5", "-cache", "8"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "steps 200") || !strings.Contains(out, `reason "signal"`) {
		t.Fatalf("bundle run output:\n%s", out)
	}

	// The printed directory must load as a valid bundle whose checkpoint
	// restores into a fresh demo join.
	var bundleDir string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "bundle written to ") {
			bundleDir = strings.Fields(line)[3]
			bundleDir = strings.TrimSuffix(bundleDir, ":")
		}
	}
	if bundleDir == "" {
		t.Fatalf("no bundle path in output:\n%s", out)
	}
	b, err := flightrec.LoadBundle(bundleDir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Step != 199 || len(b.Spans) == 0 || len(b.Checkpoint) == 0 {
		t.Fatalf("bundle step %d, %d spans, %d checkpoint bytes", b.Manifest.Step, len(b.Spans), len(b.Checkpoint))
	}
	ckpt := filepath.Join(dir, "from-bundle.ckpt")
	if err := os.WriteFile(ckpt, b.Checkpoint, 0o644); err != nil {
		t.Fatal(err)
	}
	var resumed bytes.Buffer
	if err := run([]string{"-restore", ckpt, "-len", "100", "-seed", "5", "-cache", "8"}, &resumed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed.String(), "resuming at step 200") {
		t.Fatalf("restore-from-bundle output:\n%s", resumed.String())
	}

	// -bundle-dir composes with -checkpoint in a single run.
	var both bytes.Buffer
	if err := run([]string{"-checkpoint", filepath.Join(dir, "demo.ckpt"), "-bundle-dir", bundles, "-len", "50", "-seed", "5"}, &both); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(both.String(), "checkpoint written") || !strings.Contains(both.String(), "bundle written") {
		t.Fatalf("combined run output:\n%s", both.String())
	}
}

func TestRunRestoreWrongConfig(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "demo.ckpt")
	if err := run([]string{"-checkpoint", ckpt, "-len", "50", "-seed", "5", "-cache", "8"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// A different cache size must be rejected, not silently mis-restored.
	if err := run([]string{"-restore", ckpt, "-len", "50", "-seed", "5", "-cache", "9"}, &bytes.Buffer{}); err == nil {
		t.Fatal("restore with a mismatched -cache should error")
	}
}

// shardedMetricsLines extracts the aggregate and per-shard metrics lines, the
// part of the output that must be identical between an uninterrupted run and
// a checkpoint-restore-replay run.
func shardedMetricsLines(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "sharded demo join") || strings.HasPrefix(line, "  shard ") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}

func TestRunShardedDemoFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-shards", "4", "-batch", "32", "-len", "400", "-seed", "5", "-cache", "16"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sharded demo join (shards 4, total cache 16") {
		t.Fatalf("missing aggregate line:\n%s", out)
	}
	if !strings.Contains(out, "steps 400") || !strings.Contains(out, "batches 13") {
		t.Fatalf("wrong step/batch accounting:\n%s", out)
	}
	for _, want := range []string{"  shard 0:", "  shard 1:", "  shard 2:", "  shard 3:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunShardedCheckpointRestoreFlags(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sharded.ckpt")

	// Lengths are multiples of the 64-step batch so the restored run's batch
	// boundaries line up with the uninterrupted run's and even the batch
	// counter matches; the engine state itself is batch-boundary-invariant.
	var first bytes.Buffer
	if err := run([]string{"-shards", "3", "-checkpoint", ckpt, "-len", "320", "-seed", "5", "-cache", "12"}, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "steps 320") || !strings.Contains(first.String(), "sharded checkpoint written") {
		t.Fatalf("checkpoint run output:\n%s", first.String())
	}

	var resumed bytes.Buffer
	if err := run([]string{"-shards", "3", "-restore", ckpt, "-len", "192", "-seed", "5", "-cache", "12"}, &resumed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed.String(), "resuming at step 320") {
		t.Fatalf("restore run output:\n%s", resumed.String())
	}

	// Reference: 512 uninterrupted steps with the same batching. Aggregate
	// and per-shard metrics must match the resumed run exactly.
	var full bytes.Buffer
	if err := run([]string{"-shards", "3", "-len", "512", "-seed", "5", "-cache", "12"}, &full); err != nil {
		t.Fatal(err)
	}
	got, want := shardedMetricsLines(resumed.String()), shardedMetricsLines(full.String())
	if got == "" || got != want {
		t.Fatalf("resumed metrics:\n%s\nuninterrupted metrics:\n%s", got, want)
	}
}

func TestRunShardedRestoreWrongConfig(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sharded.ckpt")
	if err := run([]string{"-shards", "2", "-checkpoint", ckpt, "-len", "50", "-seed", "5", "-cache", "8"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// A different shard count must be rejected, not silently re-partitioned.
	if err := run([]string{"-shards", "4", "-restore", ckpt, "-len", "50", "-seed", "5", "-cache", "8"}, &bytes.Buffer{}); err == nil {
		t.Fatal("restore with a mismatched -shards should error")
	}
}

func TestRunShardedBadBatch(t *testing.T) {
	if err := run([]string{"-shards", "2", "-batch", "0", "-len", "50"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-batch 0 should error")
	}
}
