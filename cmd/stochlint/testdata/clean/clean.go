// Package clean is the zero-finding corpus: the driver must exit 0 and
// emit an empty JSON array over it.
package clean

// Add is pure.
func Add(a, b int) int { return a + b }
