module stochstream

go 1.23
