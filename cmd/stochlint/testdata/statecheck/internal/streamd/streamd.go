// Package streamd is the statecheck mutation corpus's protocol endpoint:
// its dispatch handles every frame type the wire package defines. ci.sh
// deletes the case marked ci:mutate-wire and then expects wirexhaustive to
// fail the driver naming the unreachable constant.
package streamd

import "stochstream/internal/streamd/wire"

// Dispatch routes one inbound frame.
func Dispatch(typ uint8) string {
	switch typ {
	case wire.TypeHello:
		return "hello"
	case wire.TypeData: // ci:mutate-wire
		return "data"
	case wire.TypeBye:
		return "bye"
	}
	return "unknown"
}
