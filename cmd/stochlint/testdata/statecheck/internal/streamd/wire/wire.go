// Package wire is the statecheck mutation corpus's protocol-constant table.
package wire

// Frame types; every endpoint must handle all three.
const (
	TypeHello = 0x01
	TypeData  = 0x02
	TypeBye   = 0x03
)
