// Package engine is the statecheck mutation corpus: a complete, clean
// checkpointable operator. The committed tree must pass the full suite;
// ci.sh deletes the line marked ci:mutate-snapshot and then expects
// snapcomplete to fail the driver naming the dropped field.
package engine

// Config is the operator's construction-time identity.
type Config struct {
	CacheSize int
	Window    int
}

// Op is a checkpointable counter pair.
type Op struct {
	cfg   Config
	Count int
	Total int
}

// fingerprint folds every decision-path config field, so a checkpoint
// cannot restore across a config change.
func (o *Op) fingerprint() (int, int) { return o.cfg.CacheSize, o.cfg.Window }

// Bump is the operational write path.
func (o *Op) Bump(v int) {
	if v > o.cfg.Window {
		return
	}
	o.Count++
	o.Total += v
}

// SnapshotState captures the full persistent state.
func (o *Op) SnapshotState() ([]byte, error) {
	var out []byte
	out = append(out, byte(o.Count))
	out = append(out, byte(o.Total)) // ci:mutate-snapshot
	return out, nil
}

// RestoreState reads the state back in encode order.
func (o *Op) RestoreState(b []byte) error {
	o.Count = int(b[0])
	o.Total = int(b[1])
	return nil
}
