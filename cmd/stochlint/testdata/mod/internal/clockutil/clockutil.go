// Package clockutil is the golden corpus's nondeterministic helper: it is
// outside the decision packages, so its own wall-clock read is legal, but
// decision-package callers inherit the taint interprocedurally.
package clockutil

import "time"

// Stamp returns wall-clock time.
func Stamp() int64 { return time.Now().Unix() }
