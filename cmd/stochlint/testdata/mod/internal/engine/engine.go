// Package engine stubs the operator for the golden corpus: Join mirrors the
// real engine's Step/StepBatch signatures so stepretain's type-based
// matching resolves against the real import path.
package engine

// Tuple mirrors the real engine's tuple.
type Tuple struct {
	Key     int
	Payload interface{}
}

// Pair mirrors the real engine's join result.
type Pair struct {
	R, S Tuple
}

// TuplePair mirrors the real engine's batched-step input.
type TuplePair struct {
	R, S Tuple
}

// Join mirrors the real operator.
type Join struct{ out []Pair }

// Step mirrors the real Step's buffer-reuse contract.
func (j *Join) Step(r, s Tuple) []Pair {
	j.out = append(j.out[:0], Pair{R: r, S: s})
	return j.out
}

// StepBatch mirrors the real StepBatch's buffer-reuse contract.
func (j *Join) StepBatch(batch []TuplePair) []Pair {
	j.out = j.out[:0]
	for _, tp := range batch {
		j.out = append(j.out, Pair{R: tp.R, S: tp.S})
	}
	return j.out
}

// Config mirrors the real engine's construction-time identity; the corpus
// fingerprint below forgets Window.
type Config struct {
	CacheSize int
	Window    int
}

// Op seeds the golden corpus's state-contract findings: Window is read on
// the decision path but missing from the fingerprint, and hi is written a
// call below the exported method but dropped by the codec — the latter only
// visible to the interprocedural field summaries.
type Op struct {
	cfg Config
	lo  int
	hi  int
}

// fingerprint forgets cfg.Window.
func (o *Op) fingerprint() int { return o.cfg.CacheSize }

// inWindow reads cfg.Window on the runtime path.
func (o *Op) inWindow(age int) bool { return age <= o.cfg.Window }

// Bump writes both counters during operation; advance hides the hi write.
func (o *Op) Bump(age int) {
	if o.inWindow(age) {
		o.lo++
	}
	advance(o)
}

func advance(o *Op) { o.hi++ }

// SnapshotState captures lo but drops hi.
func (o *Op) SnapshotState() ([]byte, error) { return []byte{byte(o.lo)}, nil }

// RestoreState restores lo.
func (o *Op) RestoreState(b []byte) error { o.lo = int(b[0]); return nil }
