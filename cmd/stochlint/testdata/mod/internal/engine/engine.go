// Package engine stubs the operator for the golden corpus: Join mirrors the
// real engine's Step/StepBatch signatures so stepretain's type-based
// matching resolves against the real import path.
package engine

// Tuple mirrors the real engine's tuple.
type Tuple struct {
	Key     int
	Payload interface{}
}

// Pair mirrors the real engine's join result.
type Pair struct {
	R, S Tuple
}

// TuplePair mirrors the real engine's batched-step input.
type TuplePair struct {
	R, S Tuple
}

// Join mirrors the real operator.
type Join struct{ out []Pair }

// Step mirrors the real Step's buffer-reuse contract.
func (j *Join) Step(r, s Tuple) []Pair {
	j.out = append(j.out[:0], Pair{R: r, S: s})
	return j.out
}

// StepBatch mirrors the real StepBatch's buffer-reuse contract.
func (j *Join) StepBatch(batch []TuplePair) []Pair {
	j.out = j.out[:0]
	for _, tp := range batch {
		j.out = append(j.out, Pair{R: tp.R, S: tp.S})
	}
	return j.out
}
