// Package flightrec seeds the golden corpus's flight-recorder finding: the
// package is dettaint-scoped (decision package), so a span timestamp read
// straight off the wall clock reports — the real recorder routes every
// timestamp through its pinned clock seam.
package flightrec

import "time"

// Span is a completed span record.
type Span struct{ BeginNs, EndNs int64 }

// StampSpan reads the wall clock instead of the recorder's clock seam.
func StampSpan() Span {
	now := time.Now().UnixNano()
	return Span{BeginNs: now, EndNs: now}
}
