// Package policy is the stochlint driver's golden-file corpus: it seeds one
// finding of each interesting shape (direct, interprocedural, suppressed,
// stale directive, unknown analyzer) so the -json output exercises every
// field.
package policy

import (
	"time"

	"stochstream/internal/clockutil"
)

// Threshold reads the wall clock directly in a decision package.
func Threshold() int64 {
	return time.Now().Unix()
}

// Jitter reaches the wall clock only through a helper one package away:
// the finding exists only because of the interprocedural taint summaries.
func Jitter() int64 {
	return clockutil.Stamp()
}

// Close compares floats exactly under a reasoned suppression: the finding
// appears in -json with suppressed=true and does not gate the exit code.
func Close(a, b float64) bool {
	//lint:ignore floateq golden corpus: exact comparison intended
	return a == b
}

// Open compares floats exactly with no directive.
func Open(a, b float64) bool {
	return a != b
}

// Stale carries a directive with nothing to suppress.
func Stale() int {
	//lint:ignore floateq golden corpus: stale by construction
	return 1
}

// Typo names an analyzer that does not exist.
func Typo() int {
	//lint:ignore flaoteq golden corpus: misspelled analyzer
	return 2
}
