// Package streamd seeds the golden corpus's network-daemon findings: the
// package is in the decision scope (admission, dedup and replay decide what
// the runtime ingests) and the merge-determinism scope (it forwards the
// runtime's merged order to clients), so a wall-clock read in the session
// reaper and a results frame assembled in channel-arrival order must both
// report — the real daemon routes time through its Config.Clock seam and
// forwards the engine loop's already-merged order untouched.
package streamd

import "time"

// Session is a resumable client session's reap state.
type Session struct {
	LastSeenNs int64
}

// Expired decides reaping off the wall clock instead of the clock seam.
func Expired(s *Session, ttlNs int64) bool {
	return time.Now().UnixNano()-s.LastSeenNs > ttlNs
}

// Pair mirrors the daemon's wire pair.
type Pair struct {
	RSeq uint64
	SSeq uint64
}

// CollectResults accumulates shard results in channel-arrival order — which
// shard's goroutine finished first — and returns them unsorted.
func CollectResults(ch chan Pair) []Pair {
	var out []Pair
	for p := range ch {
		out = append(out, p)
	}
	return out
}
