// Dispatch seeds the golden corpus's wirexhaustive endpoint findings: the
// switch never handles TypeBye and routes one frame type as a raw literal
// instead of the named constant.
package streamd

import "stochstream/internal/streamd/wire"

// Dispatch routes one inbound frame.
func Dispatch(typ uint8) string {
	switch typ {
	case wire.TypeHello:
		return "hello"
	case 0x02:
		return "data"
	}
	return "unknown"
}
