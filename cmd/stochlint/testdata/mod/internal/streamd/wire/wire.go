// Package wire seeds the protocol-constant table for the golden corpus's
// wirexhaustive findings: streamd's Dispatch never handles TypeBye and
// routes one frame type as a raw literal.
package wire

// Frame types of the corpus protocol.
const (
	TypeHello = 0x01
	TypeData  = 0x02
	TypeBye   = 0x03
)
