// Concurrency seeds for the golden corpus: one violation per analyzer of
// the concurrency suite — a leaked goroutine, an undrained queue send, a
// torn atomic field, and a merge emitted in arrival order.
package shardrt

import "sync/atomic"

// SpawnLoop leaks a goroutine: an unconditional loop with no exit.
func SpawnLoop() {
	go func() {
		for {
		}
	}()
}

// Queue is sent on but never drained anywhere in the module.
type Queue struct {
	ch chan int
}

// Push blocks forever once the buffer fills.
func (q *Queue) Push(v int) {
	q.ch <- v
}

// Hits mixes atomic increments with a plain read.
type Hits struct {
	n int64
}

// Inc bumps the counter atomically.
func (h *Hits) Inc() {
	atomic.AddInt64(&h.n, 1)
}

// Peek reads it plainly — the tear.
func (h *Hits) Peek() int64 {
	return h.n
}

// Rec mirrors the runtime's merged record.
type Rec struct {
	RSeq int
	SSeq int
}

// Merge returns the receive loop's accumulation unsorted: arrival order.
func Merge(ch chan Rec) []Rec {
	var out []Rec
	for v := range ch {
		out = append(out, v)
	}
	return out
}
