// Package shardrt seeds the golden corpus's sharded-runtime findings: the
// package is in the decision scope (routing and rebalancing decide cache
// contents), so clock reads here must be flagged, and retaining a StepBatch
// result must be flagged everywhere.
package shardrt

import (
	"time"

	"stochstream/internal/engine"
)

// RebalanceTick drives the rebalance cadence off the wall clock — the exact
// nondeterminism the runtime's batch-counter cadence exists to avoid.
func RebalanceTick() bool {
	return time.Now().Unix()%5 == 0
}

// Collector retains a batched result beyond the step.
type Collector struct {
	pairs []engine.Pair
}

// Drain stores the operator-owned StepBatch buffer in a field.
func (c *Collector) Drain(j *engine.Join, batch []engine.TuplePair) {
	c.pairs = j.StepBatch(batch)
}
