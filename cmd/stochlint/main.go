// Command stochlint is the multichecker driver for the internal/lintrules
// analyzer suite: it type-checks the module's packages (offline, stdlib
// importer only) and runs each analyzer over its scoped package set.
//
//	go run ./cmd/stochlint ./...          # the CI invocation
//	go run ./cmd/stochlint ./internal/... # any go-style patterns work
//
// Findings print as file:line:col: [analyzer] message, relative to the
// working directory when possible, and any finding makes the exit status 1.
// Suppress a reviewed finding with a `//lint:ignore <analyzer> <reason>`
// comment on the offending line or the line above; docs/static-analysis.md
// describes every rule.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"stochstream/internal/lintrules"
	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/load"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stochlint:", err)
		os.Exit(2)
	}
}

func run(patterns []string) error {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	loader, err := load.NewLoader(root, "")
	if err != nil {
		return err
	}
	paths, err := loader.List(patterns)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no packages match %v", patterns)
	}
	rules := lintrules.Rules()
	var findings []analysis.Finding
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return err
		}
		for _, r := range rules {
			if !r.Applies(path) {
				continue
			}
			fs, err := analysis.RunAnalyzer(r.Analyzer, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				return err
			}
			findings = append(findings, fs...)
		}
	}
	if len(findings) == 0 {
		return nil
	}
	wd, _ := os.Getwd()
	for _, f := range findings {
		if wd != "" {
			if rel, err := filepath.Rel(wd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	fmt.Fprintf(os.Stderr, "stochlint: %d finding(s)\n", len(findings))
	os.Exit(1)
	return nil
}

// findModuleRoot walks up from the working directory to the directory
// containing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
