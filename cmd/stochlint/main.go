// Command stochlint is the multichecker driver for the internal/lintrules
// analyzer suite: it type-checks the module's packages (offline, stdlib
// importer only), builds whole-program context (call graph + per-function
// summaries) once, and runs each analyzer over its scoped package set.
//
//	go run ./cmd/stochlint ./...            # the CI invocation
//	go run ./cmd/stochlint -json ./...      # machine-readable findings
//	go run ./cmd/stochlint -C subdir ./...  # run as if started in subdir
//	go run ./cmd/stochlint -parallel 1 ./...
//	go run ./cmd/stochlint -rules list      # print the suite's analyzer names
//	go run ./cmd/stochlint -rules snapcomplete,wirexhaustive ./...
//
// Findings print as file:line:col: [analyzer] message, relative to the
// working directory when possible; any unsuppressed finding makes the exit
// status 1. Suppress a reviewed finding with a `//lint:ignore <analyzer>
// <reason>` comment on the offending line or the line above — the reason is
// mandatory, and stale or misnamed directives are themselves reported under
// the "staleignore" pseudo-analyzer. docs/static-analysis.md describes
// every rule.
//
// Packages are analyzed in parallel (one worker per CPU by default; -parallel
// caps it) with findings merged in deterministic package order, so output is
// byte-identical across runs regardless of scheduling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"stochstream/internal/lintrules"
	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/dataflow"
	"stochstream/internal/lintrules/load"
)

type options struct {
	// JSON switches output to a machine-readable finding array (including
	// suppressed findings, which the text mode hides).
	JSON bool
	// Dir runs the driver as if invoked from this directory (like git -C /
	// make -C): module-root discovery, pattern resolution and path
	// relativization all anchor there.
	Dir string
	// Parallel caps the number of packages analyzed concurrently; 1 forces
	// the serial order. Loading is always serial (the loader memoizes
	// through plain maps); only the analysis phase fans out.
	Parallel int
	// Timing reports load/analysis wall times plus per-analyzer aggregates
	// on stderr — the numbers recorded in BENCH_stochlint.json. Combined
	// with JSON it wraps the finding array in a {findings, timing} envelope.
	Timing bool
	// Rules selects an analyzer subset by comma-separated name; empty runs
	// the full suite. The special value "list" prints the suite's analyzer
	// names and exits. Subset runs skip the staleignore audit — a partial
	// run cannot tell whether a directive for an unselected analyzer is
	// stale.
	Rules string
}

func main() {
	fs := flag.NewFlagSet("stochlint", flag.ExitOnError)
	opts := options{}
	fs.BoolVar(&opts.JSON, "json", false, "emit findings as a JSON array (file/line/col/analyzer/message/suppressed)")
	fs.StringVar(&opts.Dir, "C", "", "run as if stochlint were started in `dir`")
	fs.IntVar(&opts.Parallel, "parallel", runtime.GOMAXPROCS(0), "max packages analyzed concurrently (1 = serial)")
	fs.BoolVar(&opts.Timing, "timing", false, "report load/analysis wall times and per-analyzer aggregates (with -json: wrap findings in a {findings, timing} envelope)")
	fs.StringVar(&opts.Rules, "rules", "", "comma-separated `names` of analyzers to run (\"list\" prints the suite and exits; default: all)")
	_ = fs.Parse(os.Args[1:])
	code, err := run(opts, fs.Args(), os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stochlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// jsonFinding is the -json record. The schema is part of the CI contract:
// scripts consuming it (and the golden file under testdata) pin these keys.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// jsonAnalyzerTiming is one analyzer's aggregate cost across all packages
// it ran on. With -parallel > 1 the per-analyzer times are summed CPU-side
// wall times of concurrent workers, so they can exceed analyze_ms.
type jsonAnalyzerTiming struct {
	Analyzer string `json:"analyzer"`
	Ms       int64  `json:"ms"`
	Packages int    `json:"packages"`
}

// jsonTiming is the -json -timing envelope's timing block.
type jsonTiming struct {
	LoadMs    int64                `json:"load_ms"`
	AnalyzeMs int64                `json:"analyze_ms"`
	Parallel  int                  `json:"parallel"`
	Packages  int                  `json:"packages"`
	Analyzers []jsonAnalyzerTiming `json:"analyzers"`
}

// jsonReport is the -json output when -timing is also set: the same finding
// records, wrapped alongside the timing block. Plain -json stays a bare
// array so the golden file and existing consumers are unaffected.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Timing   jsonTiming    `json:"timing"`
}

// run executes one driver invocation and returns its exit code: 0 clean,
// 1 when any unsuppressed finding (including staleignore audit findings)
// remains. Infrastructure failures return a non-nil error (exit 2 in main).
func run(opts options, patterns []string, stdout, stderr io.Writer) (int, error) {
	rules, fullSuite, err := selectRules(opts.Rules)
	if err != nil {
		return 0, err
	}
	if rules == nil { // -rules list
		for _, r := range lintrules.Rules() {
			fmt.Fprintln(stdout, r.Analyzer.Name)
		}
		return 0, nil
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if opts.Parallel < 1 {
		opts.Parallel = 1
	}
	workdir := opts.Dir
	if workdir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return 0, err
		}
		workdir = wd
	}
	workdir, err = filepath.Abs(workdir)
	if err != nil {
		return 0, err
	}
	root, err := findModuleRoot(workdir)
	if err != nil {
		return 0, err
	}
	loader, err := load.NewLoader(root, "")
	if err != nil {
		return 0, err
	}
	paths, err := loader.List(patterns)
	if err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		return 0, fmt.Errorf("no packages match %v", patterns)
	}

	// Load phase: strictly serial — the loader memoizes packages and
	// positions through shared maps and a shared FileSet.
	loadStart := time.Now()
	pkgs := make([]*load.Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return 0, err
		}
		pkgs = append(pkgs, pkg)
	}

	// Whole-program context: one suppression table and one call graph over
	// every source package the load phase touched (targets plus transitive
	// module imports), shared by all workers.
	table := analysis.NewSuppressionTable()
	srcPkgs := loader.SourcePackages()
	for _, p := range srcPkgs {
		table.AddFiles(loader.Fset, p.Files)
	}
	prog := dataflow.NewProgram(loader.Fset, srcPkgs, table)
	loadDur := time.Since(loadStart)

	// Analysis phase: packages fan out across workers; perFindings keeps
	// results slotted by package index so the merge order (and therefore
	// the output) is deterministic regardless of scheduling. The shared
	// structures are safe here: the suppression table and the fact solver
	// lock internally, CFGs build under sync.Once, and everything else is
	// read-only after load.
	analyzeStart := time.Now()
	perFindings := make([][]analysis.Finding, len(pkgs))
	perErr := make([]error, len(pkgs))
	type analyzerCost struct {
		dur  time.Duration
		pkgs int
	}
	costs := map[string]*analyzerCost{}
	var costsMu sync.Mutex
	sem := make(chan struct{}, opts.Parallel)
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pkg *load.Package) {
			defer wg.Done()
			defer func() { <-sem }()
			for _, r := range rules {
				if !r.Applies(pkg.Path) {
					continue
				}
				start := time.Now()
				fs, err := analysis.RunAnalyzerWith(r.Analyzer, table, prog, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
				if opts.Timing {
					d := time.Since(start)
					costsMu.Lock()
					c := costs[r.Analyzer.Name]
					if c == nil {
						c = &analyzerCost{}
						costs[r.Analyzer.Name] = c
					}
					c.dur += d
					c.pkgs++
					costsMu.Unlock()
				}
				if err != nil {
					perErr[i] = err
					return
				}
				perFindings[i] = append(perFindings[i], fs...)
			}
		}(i, pkg)
	}
	wg.Wait()
	analyzeDur := time.Since(analyzeStart)
	var findings []analysis.Finding
	for i := range pkgs {
		if perErr[i] != nil {
			return 0, perErr[i]
		}
		findings = append(findings, perFindings[i]...)
	}

	// Suppression audit, scoped to the files actually analyzed: a directive
	// in a package outside the requested patterns may legitimately be
	// unused this run. Subset runs (-rules) skip it entirely — a directive
	// for an unselected analyzer had no chance to match, so its staleness
	// is unknowable.
	if fullSuite {
		known := map[string]bool{}
		for _, a := range lintrules.Analyzers() {
			known[a.Name] = true
		}
		analyzed := map[string]bool{}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				analyzed[pkg.Fset.Position(f.Pos()).Filename] = true
			}
		}
		findings = append(findings, table.Audit(func(n string) bool { return known[n] }, analyzed)...)
	}

	for i := range findings {
		findings[i].Pos.Filename = relativize(workdir, findings[i].Pos.Filename)
	}
	analysis.SortFindings(findings)

	var timing *jsonTiming
	if opts.Timing {
		fmt.Fprintf(stderr, "stochlint: loaded %d packages (%d source incl. deps) in %dms, analyzed in %dms (parallel=%d)\n",
			len(pkgs), len(srcPkgs), loadDur.Milliseconds(), analyzeDur.Milliseconds(), opts.Parallel)
		names := make([]string, 0, len(costs))
		for name := range costs {
			names = append(names, name)
		}
		sort.Strings(names)
		timing = &jsonTiming{
			LoadMs:    loadDur.Milliseconds(),
			AnalyzeMs: analyzeDur.Milliseconds(),
			Parallel:  opts.Parallel,
			Packages:  len(pkgs),
		}
		for _, name := range names {
			c := costs[name]
			timing.Analyzers = append(timing.Analyzers, jsonAnalyzerTiming{Analyzer: name, Ms: c.dur.Milliseconds(), Packages: c.pkgs})
			fmt.Fprintf(stderr, "stochlint:   %-14s %4dms over %d package(s)\n", name, c.dur.Milliseconds(), c.pkgs)
		}
	}

	unsuppressed := 0
	for _, f := range findings {
		if !f.Suppressed {
			unsuppressed++
		}
	}

	if opts.JSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:       f.Pos.Filename,
				Line:       f.Pos.Line,
				Col:        f.Pos.Column,
				Analyzer:   f.Analyzer,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		// With -timing the array is wrapped in an envelope carrying the
		// timing block; without it the bare array stays the stable schema.
		var payload interface{} = out
		if timing != nil {
			payload = jsonReport{Findings: out, Timing: *timing}
		}
		if err := enc.Encode(payload); err != nil {
			return 0, err
		}
	} else {
		for _, f := range findings {
			if f.Suppressed {
				continue
			}
			fmt.Fprintln(stdout, f)
		}
		if unsuppressed > 0 {
			fmt.Fprintf(stderr, "stochlint: %d finding(s)\n", unsuppressed)
		}
	}
	if unsuppressed > 0 {
		return 1, nil
	}
	return 0, nil
}

// selectRules resolves the -rules value against the suite: "" keeps every
// rule (fullSuite true), "list" returns a nil slice (the caller prints the
// names and exits), and a comma-separated list picks that subset in suite
// order, rejecting names the suite does not have. Duplicate and empty
// segments are tolerated.
func selectRules(spec string) (rules []lintrules.Rule, fullSuite bool, err error) {
	all := lintrules.Rules()
	if spec == "" {
		return all, true, nil
	}
	if spec == "list" {
		return nil, false, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		want[name] = true
	}
	names := make([]string, 0, len(all))
	for _, r := range all {
		names = append(names, r.Analyzer.Name)
		if want[r.Analyzer.Name] {
			rules = append(rules, r)
			delete(want, r.Analyzer.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		return nil, false, fmt.Errorf("-rules names unknown analyzer(s) %s (the suite has: %s)",
			strings.Join(unknown, ", "), strings.Join(names, ", "))
	}
	if len(rules) == 0 {
		return nil, false, fmt.Errorf("-rules %q selects no analyzers", spec)
	}
	return rules, len(rules) == len(all), nil
}

// relativize rewrites an absolute filename relative to base when the result
// stays inside base; slashes are normalized so output (and the golden file)
// is platform-stable.
func relativize(base, filename string) string {
	if base == "" || filename == "" {
		return filename
	}
	rel, err := filepath.Rel(base, filename)
	if err != nil || rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator) {
		return filename
	}
	return filepath.ToSlash(rel)
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
