package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenJSON pins the -json output over the seeded corpus byte for byte:
// the record schema (file/line/col/analyzer/message/suppressed), the
// deterministic ordering, the suppressed=true entry and the staleignore
// audit findings. Regenerate with STOCHLINT_UPDATE_GOLDEN=1 go test ./cmd/stochlint.
func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(options{JSON: true, Dir: "testdata/mod", Parallel: 4}, []string{"./..."}, &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (unsuppressed findings present)", code)
	}
	golden := filepath.Join("testdata", "golden.json")
	if os.Getenv("STOCHLINT_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from %s\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

// TestSerialParallelIdentical pins the determinism contract: scheduling must
// not reorder or change findings.
func TestSerialParallelIdentical(t *testing.T) {
	var serial, par bytes.Buffer
	if _, err := run(options{JSON: true, Dir: "testdata/mod", Parallel: 1}, []string{"./..."}, &serial, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := run(options{JSON: true, Dir: "testdata/mod", Parallel: 8}, []string{"./..."}, &par, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), par.Bytes()) {
		t.Errorf("serial and parallel output differ\n--- serial ---\n%s\n--- parallel ---\n%s", serial.Bytes(), par.Bytes())
	}
}

// TestCleanCorpus pins the zero-finding contract: exit 0 and an empty array.
func TestCleanCorpus(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(options{JSON: true, Dir: "testdata/clean", Parallel: 2}, []string{"./..."}, &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("output = %q, want empty JSON array", got)
	}
}

// TestTextHidesSuppressed pins the text mode's contract: suppressed findings
// stay out of the human-facing report (they are visible via -json).
func TestTextHidesSuppressed(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(options{Dir: "testdata/mod", Parallel: 2}, []string{"./..."}, &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if bytes.Contains(buf.Bytes(), []byte("policy.go:28")) {
		t.Errorf("text output leaks the suppressed finding:\n%s", buf.Bytes())
	}
	if !bytes.Contains(buf.Bytes(), []byte("[dettaint]")) || !bytes.Contains(buf.Bytes(), []byte("[staleignore]")) {
		t.Errorf("text output missing expected findings:\n%s", buf.Bytes())
	}
}
