package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"stochstream/internal/lintrules"
)

// TestGoldenJSON pins the -json output over the seeded corpus byte for byte:
// the record schema (file/line/col/analyzer/message/suppressed), the
// deterministic ordering, the suppressed=true entry and the staleignore
// audit findings. Regenerate with STOCHLINT_UPDATE_GOLDEN=1 go test ./cmd/stochlint.
func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(options{JSON: true, Dir: "testdata/mod", Parallel: 4}, []string{"./..."}, &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (unsuppressed findings present)", code)
	}
	golden := filepath.Join("testdata", "golden.json")
	if os.Getenv("STOCHLINT_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from %s\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

// TestSerialParallelIdentical pins the determinism contract: scheduling must
// not reorder or change findings.
func TestSerialParallelIdentical(t *testing.T) {
	var serial, par bytes.Buffer
	if _, err := run(options{JSON: true, Dir: "testdata/mod", Parallel: 1}, []string{"./..."}, &serial, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := run(options{JSON: true, Dir: "testdata/mod", Parallel: 8}, []string{"./..."}, &par, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), par.Bytes()) {
		t.Errorf("serial and parallel output differ\n--- serial ---\n%s\n--- parallel ---\n%s", serial.Bytes(), par.Bytes())
	}
}

// TestCleanCorpus pins the zero-finding contract: exit 0 and an empty array.
func TestCleanCorpus(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(options{JSON: true, Dir: "testdata/clean", Parallel: 2}, []string{"./..."}, &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("output = %q, want empty JSON array", got)
	}
}

// TestTimingJSONSchema pins the -json -timing envelope: the same finding
// records under "findings", and a timing block with load/analyze wall
// times, the worker cap, the package count, and one aggregate entry per
// analyzer that ran, sorted by name.
func TestTimingJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(options{JSON: true, Timing: true, Dir: "testdata/mod", Parallel: 2}, []string{"./..."}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	var report jsonReport
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("-json -timing output is not a {findings, timing} envelope: %v\n%s", err, buf.Bytes())
	}
	if len(report.Findings) == 0 {
		t.Error("envelope carries no findings (the mod corpus seeds several)")
	}
	tm := report.Timing
	if tm.Parallel != 2 {
		t.Errorf("timing.parallel = %d, want 2", tm.Parallel)
	}
	if tm.Packages == 0 {
		t.Error("timing.packages = 0")
	}
	if tm.LoadMs < 0 || tm.AnalyzeMs < 0 {
		t.Errorf("negative wall times: load=%d analyze=%d", tm.LoadMs, tm.AnalyzeMs)
	}
	ran := map[string]jsonAnalyzerTiming{}
	for i, at := range tm.Analyzers {
		if i > 0 && !(tm.Analyzers[i-1].Analyzer < at.Analyzer) {
			t.Errorf("timing.analyzers not sorted by name: %q before %q", tm.Analyzers[i-1].Analyzer, at.Analyzer)
		}
		if at.Packages == 0 {
			t.Errorf("analyzer %s ran on 0 packages", at.Analyzer)
		}
		ran[at.Analyzer] = at
	}
	// Every suite rule that applies to some corpus package must appear; the
	// concurrency suite covers internal/shardrt, so all four are present.
	for _, name := range []string{"goleak", "chandiscipline", "atomicfield", "mergedet", "dettaint", "floateq"} {
		if _, ok := ran[name]; !ok {
			t.Errorf("timing.analyzers missing %s", name)
		}
	}
	if len(ran) > len(lintrules.Analyzers()) {
		t.Errorf("timing lists %d analyzers, more than the suite's %d", len(ran), len(lintrules.Analyzers()))
	}

	// Without -timing the output stays a bare array (the golden schema).
	var plain bytes.Buffer
	if _, err := run(options{JSON: true, Dir: "testdata/mod", Parallel: 2}, []string{"./..."}, &plain, io.Discard); err != nil {
		t.Fatal(err)
	}
	var arr []jsonFinding
	if err := json.Unmarshal(plain.Bytes(), &arr); err != nil {
		t.Fatalf("plain -json output is not a bare finding array: %v", err)
	}
}

// TestRulesList pins -rules list: every suite analyzer, one per line, in
// suite order, without loading any packages (no patterns are resolved).
func TestRulesList(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(options{Rules: "list"}, nil, &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	lines := strings.Fields(buf.String())
	rules := lintrules.Rules()
	if len(lines) != len(rules) {
		t.Fatalf("-rules list printed %d names, suite has %d:\n%s", len(lines), len(rules), buf.String())
	}
	for i, r := range rules {
		if lines[i] != r.Analyzer.Name {
			t.Errorf("line %d = %q, want %q (suite order)", i, lines[i], r.Analyzer.Name)
		}
	}
	for _, name := range []string{"snapcomplete", "fingerprintcover", "wirexhaustive"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-rules list missing %s", name)
		}
	}
}

// TestRulesSubset pins -rules subsetting over the seeded corpus: only the
// selected analyzer reports, the staleignore audit is skipped (a subset run
// cannot judge directives for unselected analyzers), and the -json record
// schema is byte-identical to the full run's — exactly the keys file, line,
// col, analyzer, message, suppressed.
func TestRulesSubset(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(options{JSON: true, Rules: "dettaint", Dir: "testdata/mod", Parallel: 2}, []string{"./..."}, &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (the corpus seeds dettaint findings)", code)
	}
	var raw []map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("subset -json output is not a bare finding array: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("subset run found nothing (the corpus seeds dettaint findings)")
	}
	wantKeys := []string{"analyzer", "col", "file", "line", "message", "suppressed"}
	for _, rec := range raw {
		keys := make([]string, 0, len(rec))
		for k := range rec {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if !reflect.DeepEqual(keys, wantKeys) {
			t.Fatalf("-json record keys = %v, want %v", keys, wantKeys)
		}
	}
	var findings []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &findings); err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer != "dettaint" {
			t.Errorf("subset run leaked %s finding at %s:%d (staleignore must be skipped too)", f.Analyzer, f.File, f.Line)
		}
	}
}

// TestRulesUnknown pins the error contract: a typo'd analyzer name is an
// infrastructure error (exit 2 in main), naming both the unknown analyzer
// and the valid suite.
func TestRulesUnknown(t *testing.T) {
	_, err := run(options{Rules: "snapcompete", Dir: "testdata/mod"}, []string{"./..."}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("unknown -rules name must error")
	}
	if !strings.Contains(err.Error(), "snapcompete") || !strings.Contains(err.Error(), "snapcomplete") {
		t.Errorf("error must name the unknown analyzer and the suite, got: %v", err)
	}
}

// TestTextHidesSuppressed pins the text mode's contract: suppressed findings
// stay out of the human-facing report (they are visible via -json).
func TestTextHidesSuppressed(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(options{Dir: "testdata/mod", Parallel: 2}, []string{"./..."}, &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if bytes.Contains(buf.Bytes(), []byte("policy.go:28")) {
		t.Errorf("text output leaks the suppressed finding:\n%s", buf.Bytes())
	}
	if !bytes.Contains(buf.Bytes(), []byte("[dettaint]")) || !bytes.Contains(buf.Bytes(), []byte("[staleignore]")) {
		t.Errorf("text output missing expected findings:\n%s", buf.Bytes())
	}
}
