// Command stochstreamd runs the stream-join daemon: the sharded runtime
// mounted behind the framed TCP protocol and an HTTP observability surface,
// with overload shedding, per-session flow control and checkpointed
// graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	stochstreamd -listen :7070 -http :7071 -shards 8 -cache 4096 \
//	    -checkpoint /var/lib/stochstream/streamd.ckpt
//
// On SIGTERM the daemon stops admitting work, flushes every in-flight
// batch through the engine, writes the checkpoint, notifies clients and
// exits 0. Started again with the same flags it restores the checkpoint
// and continues the stream byte-identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stochstream/internal/shardrt"
	"stochstream/internal/streamd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, nil))
}

// run is the testable entrypoint: sigCh overrides the OS signal wiring so
// tests can drive the drain path deterministically.
func run(args []string, stdout io.Writer, sigCh <-chan os.Signal) int {
	fs := flag.NewFlagSet("stochstreamd", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		listen     = fs.String("listen", "127.0.0.1:7070", "framed-protocol TCP listen address")
		httpAddr   = fs.String("http", "", "HTTP surface listen address (empty disables)")
		shards     = fs.Int("shards", 4, "runtime shard count")
		cache      = fs.Int("cache", 1024, "total cache budget across shards")
		window     = fs.Int("window", 0, "sliding-window size in shard steps (0 = unbounded)")
		seed       = fs.Uint64("seed", 1, "runtime policy seed")
		queue      = fs.Int("queue", 64, "engine ingest queue depth (batches); full queue sheds")
		credits    = fs.Int("credits", 4096, "per-session flow-control window in steps")
		memLimitMB = fs.Uint64("mem-limit-mb", 0, "heap soft limit in MiB; above it new batches shed (0 disables)")
		retryAfter = fs.Duration("retry-after", 50*time.Millisecond, "backoff hint attached to overload rejections")
		readTO     = fs.Duration("read-timeout", 2*time.Minute, "per-frame read deadline (idle connection bound)")
		writeTO    = fs.Duration("write-timeout", 30*time.Second, "per-frame write deadline")
		sessionTTL = fs.Duration("session-ttl", 15*time.Minute, "detached session retention")
		ckpt       = fs.String("checkpoint", "", "checkpoint path: restored at startup, written on drain")
		drainTO    = fs.Duration("drain-timeout", 30*time.Second, "bound on the drain's engine flush")
		flight     = fs.Bool("flight", false, "attach flight recorders to every shard")
		telem      = fs.Bool("telemetry", true, "attach telemetry registries to every shard")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	srv, err := streamd.Start(streamd.Config{
		Runtime: shardrt.Config{
			Shards:     *shards,
			TotalCache: *cache,
			Window:     *window,
			Seed:       *seed,
			Telemetry:  *telem,
			Flight:     *flight,
		},
		Listen:         *listen,
		HTTPListen:     *httpAddr,
		Credits:        *credits,
		QueueDepth:     *queue,
		MemSoftLimit:   *memLimitMB << 20,
		RetryAfter:     *retryAfter,
		ReadTimeout:    *readTO,
		WriteTimeout:   *writeTO,
		SessionTTL:     *sessionTTL,
		CheckpointPath: *ckpt,
	})
	if err != nil {
		fmt.Fprintf(stdout, "stochstreamd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "stochstreamd: listening on %s\n", srv.Addr())
	if a := srv.HTTPAddr(); a != "" {
		fmt.Fprintf(stdout, "stochstreamd: http on %s\n", a)
	}

	if sigCh == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGTERM, syscall.SIGINT)
		defer signal.Stop(ch)
		sigCh = ch
	}
	sig := <-sigCh
	fmt.Fprintf(stdout, "stochstreamd: %v, draining\n", sig)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(stdout, "stochstreamd: drain: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "stochstreamd: drained")
	return 0
}
