package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"stochstream/internal/streamd/client"
	"stochstream/internal/streamd/wire"
)

// syncBuffer lets the test read run's output while run is writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForAddr polls the daemon's startup line for the bound address.
func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "stochstreamd: listening on "); ok {
				return strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never reported its address; output:\n%s", out.String())
	return ""
}

// TestRunDrainOnSignal boots the daemon, serves one client, then delivers
// SIGTERM and expects a clean drain with a checkpoint on disk.
func TestRunDrainOnSignal(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "streamd.ckpt")
	out := &syncBuffer{}
	sig := make(chan os.Signal, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-shards", "2", "-cache", "64",
			"-checkpoint", ckpt,
		}, out, sig)
	}()
	addr := waitForAddr(t, out)

	cl, err := client.Dial(client.Options{Addr: addr, Session: "cmdtest", Seed: 3})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := cl.Ingest([]wire.Step{{RKey: 1, SKey: 1}, {RKey: 2, SKey: 3}}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("client Close: %v", err)
	}

	sig <- syscall.SIGTERM
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d; output:\n%s", code, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("run did not exit after SIGTERM; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("output missing drain confirmation:\n%s", out.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Errorf("checkpoint not written: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	var out syncBuffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, nil); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
}

func TestRunBadConfig(t *testing.T) {
	var out syncBuffer
	// Cache below the per-shard floor fails runtime validation.
	if code := run([]string{"-shards", "8", "-cache", "1"}, &out, nil); code != 1 {
		t.Fatalf("bad config exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "stochstreamd:") {
		t.Errorf("error not reported on stdout:\n%s", out.String())
	}
}
