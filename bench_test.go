package stochstream

import (
	"io"
	"testing"

	"stochstream/internal/core"
	"stochstream/internal/dist"
	"stochstream/internal/engine"
	"stochstream/internal/experiment"
	"stochstream/internal/flightrec"
	"stochstream/internal/join"
	"stochstream/internal/mincostflow"
	"stochstream/internal/modelsel"
	"stochstream/internal/multijoin"
	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/stats"
	"stochstream/internal/telemetry"
	"stochstream/internal/workload"
)

// benchOptions shrinks experiment scale so a full -bench=. pass stays in the
// minutes range; cmd/repro regenerates figures at paper scale.
func benchOptions() experiment.Options {
	o := experiment.Defaults()
	o.Runs = 2
	o.Length = 1000
	o.Cache = 10
	o.Seed = 9
	o.FlowExpectRuns = 1
	o.FlowExpectLength = 200
	return o
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	o := benchOptions()
	gen := experiment.Registry()[id]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := gen(o)
		if err != nil {
			b.Fatal(err)
		}
		fig.Render(io.Discard)
	}
}

// One benchmark per evaluation figure of the paper.

func BenchmarkFigure06(b *testing.B) { benchFigure(b, "6") }
func BenchmarkFigure07(b *testing.B) { benchFigure(b, "7") }
func BenchmarkFigure08(b *testing.B) { benchFigure(b, "8") }
func BenchmarkFigure09(b *testing.B) { benchFigure(b, "9") }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, "10") }
func BenchmarkFigure11(b *testing.B) { benchFigure(b, "11") }
func BenchmarkFigure12(b *testing.B) { benchFigure(b, "12") }
func BenchmarkFigure13(b *testing.B) { benchFigure(b, "13") }
func BenchmarkFigure14(b *testing.B) { benchFigure(b, "14") }
func BenchmarkFigure15(b *testing.B) { benchFigure(b, "15") }
func BenchmarkFigure16(b *testing.B) { benchFigure(b, "16") }
func BenchmarkFigure17(b *testing.B) { benchFigure(b, "17") }
func BenchmarkFigure18(b *testing.B) { benchFigure(b, "18") }
func BenchmarkFigure19(b *testing.B) { benchFigure(b, "19") }

// Micro-benchmarks of the paper's building blocks.

func BenchmarkHEEBScoreDirect(b *testing.B) {
	w := workload.Tower().Join()
	h := process.NewHistory(make([]int, 101)...)
	l := core.LExp{Alpha: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.JoinH(w.Procs[1], h, 100+i%20-10, l, 0)
	}
}

func BenchmarkHEEBScorePrecomputedH1(b *testing.B) {
	walk := &process.GaussianWalk{Sigma: 1}
	h1, err := core.PrecomputeH1(walk, core.LExp{Alpha: 10}, -40, 40, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h1.At(0, i%40-20)
	}
}

func BenchmarkFlowExpectStep(b *testing.B) {
	w := workload.Tower().Join()
	hists := [2]*process.History{
		process.NewHistory(make([]int, 50)...),
		process.NewHistory(make([]int, 50)...),
	}
	cands := make([]core.Candidate, 12)
	for i := range cands {
		cands[i] = core.Candidate{Value: 45 + i, Stream: core.StreamID(i % 2)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FlowExpectStep(cands, w.Procs, hists, 10, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptOfflineJoin(b *testing.B) {
	w := workload.Tower().Join()
	r, s := w.Generate(stats.NewRNG(1), 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.OptOfflineJoin(r, s, 10, 0)
	}
}

// Ablation benches for the design decisions called out in DESIGN.md.

// BenchmarkAblationHorizon varies the Lexp truncation threshold: longer
// horizons cost linearly more per score for (here) immeasurable accuracy
// gain beyond the default 1e-9 cutoff.
func BenchmarkAblationHorizon(b *testing.B) {
	w := workload.Roof().Join()
	h := process.NewHistory(make([]int, 101)...)
	for _, alpha := range []float64{3, 10, 50} {
		l := core.LExp{Alpha: alpha}
		b.Run("alpha="+itoa(int(alpha)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.JoinH(w.Procs[1], h, 100, l, 0)
			}
		})
	}
}

// BenchmarkAblationIncremental compares a full HEEB run across the direct,
// time-incremental (Corollary 3) and value-incremental (Corollary 5) scoring
// modes — the Section 4.4 implementation techniques.
func BenchmarkAblationIncremental(b *testing.B) {
	w := workload.Tower().Join()
	r, s := w.Generate(stats.NewRNG(5), 1500)
	cfg := join.Config{CacheSize: 10, Warmup: -1, Procs: w.Procs}
	for _, mode := range []policy.HEEBMode{policy.HEEBDirect, policy.HEEBIncremental, policy.HEEBValueIncremental} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				join.Run(r, s, policy.NewHEEB(policy.HEEBOptions{Mode: mode, LifetimeEstimate: 3}), cfg, stats.NewRNG(1))
			}
		})
	}
}

// BenchmarkMultiJoinHEEB measures the multi-way join simulator on a star
// topology.
func BenchmarkMultiJoinHEEB(b *testing.B) {
	mk := func() process.Process {
		return &process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(2, 12)}
	}
	cfg := multijoin.Config{
		Procs:     []process.Process{mk(), mk(), mk()},
		Edges:     []multijoin.Edge{{A: 0, B: 1}, {A: 0, B: 2}},
		CacheSize: 9,
		Warmup:    -1,
	}
	rng := stats.NewRNG(5)
	streams := make([][]int, 3)
	for i := range streams {
		streams[i] = cfg.Procs[i].Generate(rng, 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multijoin.Run(streams, &multijoin.HEEB{}, cfg, stats.NewRNG(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarkovFirstPassage measures the exact first-passage HEEB scorer.
func BenchmarkMarkovFirstPassage(b *testing.B) {
	n := 20
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
		for j := range p[i] {
			p[i][j] = 1 / float64(n)
		}
	}
	m, err := process.NewMarkovChain(0, p, 0)
	if err != nil {
		b.Fatal(err)
	}
	l := core.LExp{Alpha: 20}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MarkovFirstPassageH(m, 0, i%n, l, 0)
	}
}

// BenchmarkModelDetection measures the full model-selection decision tree.
func BenchmarkModelDetection(b *testing.B) {
	series := (&process.AR1{Phi0: 5, Phi1: 0.7, Sigma: 3, Init: 17}).Generate(stats.NewRNG(2), 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := modelsel.Detect(series); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverComparison runs the same OPT-offline instance through the
// SSP float solver and the Goldberg-style integer cost-scaling solver.
func BenchmarkSolverComparison(b *testing.B) {
	w := workload.Tower().Join()
	r, s := w.Generate(stats.NewRNG(1), 1500)
	b.Run("ssp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.OptOfflineJoin(r, s, 10, 0)
		}
	})
	// The cost-scaling path is exercised through the dedicated IntGraph on
	// an assignment-shaped instance of comparable size.
	b.Run("costscaling", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := mincostflow.NewInt(2*40 + 2)
			src, snk := 0, 2*40+1
			rng := stats.NewRNG(7)
			for u := 0; u < 40; u++ {
				g.AddArc(src, 1+u, 1, 0)
				g.AddArc(1+40+u, snk, 1, 0)
				for v := 0; v < 40; v++ {
					g.AddArc(1+u, 1+40+v, 1, int64(rng.IntN(41)-20))
				}
			}
			if _, err := g.MinCostFlow(src, snk, 40); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPrecompute compares WALK runs with direct marginal
// scoring against the precomputed h1 curve (Section 4.4.3's motivation).
func BenchmarkAblationPrecompute(b *testing.B) {
	w := workload.Walk()
	r, s := w.Generate(stats.NewRNG(5), 1000)
	cfg := join.Config{CacheSize: 10, Warmup: -1, Procs: w.Procs}
	for _, mode := range []policy.HEEBMode{policy.HEEBDirect, policy.HEEBPrecomputedH1} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				join.Run(r, s, policy.NewHEEB(policy.HEEBOptions{Mode: mode}), cfg, stats.NewRNG(1))
			}
		})
	}
}

// BenchmarkAblationDominance measures the cost of the Corollary 2 dominance
// prefilter on top of plain HEEB.
func BenchmarkAblationDominance(b *testing.B) {
	w := workload.Floor().Join()
	r, s := w.Generate(stats.NewRNG(5), 1000)
	cfg := join.Config{CacheSize: 10, Warmup: -1, Procs: w.Procs}
	for _, pre := range []bool{false, true} {
		name := "plain"
		if pre {
			name = "prefilter"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				join.Run(r, s, policy.NewHEEB(policy.HEEBOptions{
					Mode:               policy.HEEBDirect,
					LifetimeEstimate:   w.LifetimeEstimate,
					DominancePrefilter: pre,
				}), cfg, stats.NewRNG(1))
			}
		})
	}
}

// BenchmarkAblationControlPoints varies the h2 control grid density
// (Figure 16's accuracy/space trade-off, timed).
func BenchmarkAblationControlPoints(b *testing.B) {
	ar := &process.AR1{Phi0: 55.9, Phi1: 0.72, Sigma: 42.2, Init: 200}
	l := core.LExp{Alpha: 100}
	for _, n := range []int{3, 5, 9} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.PrecomputeH2(ar, l, 50, 350, 50, 350, n, n, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchStepEngine drives one fixed 2000-step HEEB run through the engine
// operator per iteration; reg == nil and mkRec == nil is the bare
// configuration. mkRec builds a fresh flight recorder per operator so span
// rings never carry over between iterations.
func benchStepEngine(b *testing.B, reg *telemetry.Registry, mkRec func() *flightrec.Recorder) {
	b.Helper()
	procs := [2]process.Process{
		&process.LinearTrend{Slope: 1, Intercept: -1, Noise: dist.BoundedNormal(2, 12)},
		&process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(3, 15)},
	}
	const n = 2000
	rng := stats.NewRNG(21)
	r := procs[0].Generate(rng.Split(), n)
	s := procs[1].Generate(rng.Split(), n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := engine.Config{CacheSize: 10, Procs: procs, Seed: 1, Telemetry: reg}
		if mkRec != nil {
			cfg.Flight = mkRec()
		}
		j, err := engine.NewJoin(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for t := 0; t < n; t++ {
			j.Step(engine.Tuple{Key: r[t]}, engine.Tuple{Key: s[t]})
		}
	}
}

// BenchmarkStepBare / BenchmarkStepInstrumented bound the telemetry layer's
// hot-path cost: the instrumented run adds per-step clock reads and atomic
// writes plus a sampled decision-trace re-score; the target recorded in
// BENCH_telemetry.json is < 10% overhead.
func BenchmarkStepBare(b *testing.B) { benchStepEngine(b, nil, nil) }
func BenchmarkStepInstrumented(b *testing.B) {
	benchStepEngine(b, telemetry.NewRegistry(), nil)
}

// BenchmarkStepFlightRec bounds the flight recorder's always-on cost in its
// production shape: wall-clock spans (the engine's EnsureClock seam), default
// lifecycle sampling, no bundle directory. The target recorded in
// BENCH_flightrec.json is < 10% overhead versus BenchmarkStepBare.
func BenchmarkStepFlightRec(b *testing.B) {
	benchStepEngine(b, nil, func() *flightrec.Recorder {
		return flightrec.New(flightrec.Options{SampleSeed: 1})
	})
}

// benchmarkStepHot measures one operator Step at steady state (cache full,
// every step probes, scores all candidates and evicts) — the hot path the
// BENCH_hotpath.json trajectory tracks. LifetimeEstimate is pinned so α (and
// with it the HEEB summation horizon) does not scale with the cache size and
// the cache-size axis isolates candidate-count effects.
func benchmarkStepHot(b *testing.B, cacheSize, band int, opts policy.HEEBOptions) {
	b.Helper()
	procs := [2]process.Process{
		&process.LinearTrend{Slope: 1, Intercept: -1, Noise: dist.BoundedNormal(2, 12)},
		&process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(3, 15)},
	}
	warm := cacheSize/2 + 4 // steps until the cache is full and evicting
	n := warm + b.N
	rng := stats.NewRNG(21)
	r := procs[0].Generate(rng.Split(), n)
	s := procs[1].Generate(rng.Split(), n)
	j, err := engine.NewJoin(engine.Config{
		CacheSize: cacheSize,
		Band:      band,
		Procs:     procs,
		Policy:    policy.NewHEEB(opts),
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for t := 0; t < warm; t++ {
		j.Step(engine.Tuple{Key: r[t]}, engine.Tuple{Key: s[t]})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for t := warm; t < n; t++ {
		j.Step(engine.Tuple{Key: r[t]}, engine.Tuple{Key: s[t]})
	}
}

// hotOpts is the HEEB configuration the hot-path trajectory is measured
// under: direct scoring with a pinned lifetime estimate.
func hotOpts() policy.HEEBOptions {
	return policy.HEEBOptions{Mode: policy.HEEBDirect, LifetimeEstimate: 32}
}

func BenchmarkStepHotEquiCache64(b *testing.B)   { benchmarkStepHot(b, 64, 0, hotOpts()) }
func BenchmarkStepHotEquiCache256(b *testing.B)  { benchmarkStepHot(b, 256, 0, hotOpts()) }
func BenchmarkStepHotEquiCache1024(b *testing.B) { benchmarkStepHot(b, 1024, 0, hotOpts()) }
func BenchmarkStepHotBandCache256(b *testing.B)  { benchmarkStepHot(b, 256, 4, hotOpts()) }

// The opt-in parallel scorer on the same workload; the speedup over
// BenchmarkStepHotEquiCache256 is what the Parallel option buys.
func BenchmarkStepHotEquiCache256Parallel(b *testing.B) {
	o := hotOpts()
	o.Parallel = true
	benchmarkStepHot(b, 256, 0, o)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
