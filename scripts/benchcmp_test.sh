#!/usr/bin/env bash
# benchcmp_test.sh — tests for the perf regression gate itself: feeds the
# scripts/benchcmp comparator a synthetic baseline plus crafted bench output
# and asserts the exit codes, so a broken gate cannot silently wave
# regressions through. Run directly or via scripts/ci.sh:
#
#   ./scripts/benchcmp_test.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

cat > "$tmp/baseline.json" <<'EOF'
{
  "regression_gate_percent": 25.0,
  "benchmarks": {
    "BenchmarkStepHotSynthetic": {
      "before": {"median_ns_per_op": 10000},
      "after":  {"median_ns_per_op": 1000}
    }
  }
}
EOF

fail=0
check() { # check <name> <want_status|nonzero> <bench output...>
    local name=$1 want=$2 input=$3 status=0
    printf '%s\n' "$input" | go run ./scripts/benchcmp "$tmp/baseline.json" > "$tmp/out.txt" 2>&1 || status=$?
    if [ "$want" = nonzero ] && [ "$status" -ne 0 ]; then want=$status; fi
    if [ "$status" -ne "$want" ]; then
        echo "FAIL $name: exit $status, want $want"
        sed 's/^/    /' "$tmp/out.txt"
        fail=1
    else
        echo "ok   $name (exit $status)"
    fi
}

# >25% past the recorded median (1000 -> 2000 ns/op) must fail the gate.
check "synthetic +100% regression rejected" 1 \
"BenchmarkStepHotSynthetic-8   50   2000 ns/op
BenchmarkStepHotSynthetic-8   50   2100 ns/op
BenchmarkStepHotSynthetic-8   50   1900 ns/op"

# Right at the recorded median must pass.
check "at-baseline run accepted" 0 \
"BenchmarkStepHotSynthetic-8   50   1000 ns/op
BenchmarkStepHotSynthetic-8   50    990 ns/op
BenchmarkStepHotSynthetic-8   50   1010 ns/op"

# Within the 25% gate (median 1200, +20%) must pass.
check "within-gate +20% accepted" 0 \
"BenchmarkStepHotSynthetic-8   50   1200 ns/op"

# A benchmark missing from the fresh run must fail (a deleted benchmark
# would otherwise dodge the gate forever).
check "missing benchmark rejected" 1 \
"BenchmarkSomethingElse-8      50   1000 ns/op"

# Garbage input (no bench lines at all) must fail with a usage error (go
# run collapses the binary's exit 2 to its own nonzero status).
check "empty input rejected" nonzero "no benchmarks here"

# --- overhead mode (flight-recorder budget gate) -------------------------

cat > "$tmp/overhead.json" <<'EOF'
{"overhead_budget_percent": 10.0}
EOF

checkov() { # checkov <name> <want_status|nonzero> <bench output...>
    local name=$1 want=$2 input=$3 status=0
    printf '%s\n' "$input" |
        go run ./scripts/benchcmp -overhead BenchmarkBareSynthetic BenchmarkFlightSynthetic "$tmp/overhead.json" \
            > "$tmp/out.txt" 2>&1 || status=$?
    if [ "$want" = nonzero ] && [ "$status" -ne 0 ]; then want=$status; fi
    if [ "$status" -ne "$want" ]; then
        echo "FAIL $name: exit $status, want $want"
        sed 's/^/    /' "$tmp/out.txt"
        fail=1
    else
        echo "ok   $name (exit $status)"
    fi
}

# +50% median overhead blows the 10% budget.
checkov "overhead +50% rejected" 1 \
"BenchmarkBareSynthetic-8     50   1000 ns/op
BenchmarkFlightSynthetic-8   50   1500 ns/op"

# +5% median overhead is within budget.
checkov "overhead +5% accepted" 0 \
"BenchmarkBareSynthetic-8     50   1000 ns/op
BenchmarkBareSynthetic-8     50    980 ns/op
BenchmarkBareSynthetic-8     50   1020 ns/op
BenchmarkFlightSynthetic-8   50   1050 ns/op
BenchmarkFlightSynthetic-8   50   1040 ns/op
BenchmarkFlightSynthetic-8   50   1060 ns/op"

# Instrumented run faster than bare (noise) must still pass.
checkov "overhead negative accepted" 0 \
"BenchmarkBareSynthetic-8     50   1000 ns/op
BenchmarkFlightSynthetic-8   50    950 ns/op"

# Either benchmark missing from the fresh run is a hard error, not a pass.
checkov "overhead missing bare rejected" nonzero \
"BenchmarkFlightSynthetic-8   50   1000 ns/op"
checkov "overhead missing flight rejected" nonzero \
"BenchmarkBareSynthetic-8     50   1000 ns/op"

# --- scale mode (sharded-runtime speedup gate) ---------------------------

cat > "$tmp/scale.json" <<'EOF'
{"min_speedup_x": 3.0}
EOF

checksc() { # checksc <name> <want_status|nonzero> <bench output...>
    local name=$1 want=$2 input=$3 status=0
    printf '%s\n' "$input" |
        go run ./scripts/benchcmp -scale BenchmarkBaseSynthetic BenchmarkShardedSynthetic "$tmp/scale.json" \
            > "$tmp/out.txt" 2>&1 || status=$?
    if [ "$want" = nonzero ] && [ "$status" -ne 0 ]; then want=$status; fi
    if [ "$status" -ne "$want" ]; then
        echo "FAIL $name: exit $status, want $want"
        sed 's/^/    /' "$tmp/out.txt"
        fail=1
    else
        echo "ok   $name (exit $status)"
    fi
}

# 4x median speedup clears the 3x floor.
checksc "scale 4x accepted" 0 \
"BenchmarkBaseSynthetic-8      50   4000 ns/op
BenchmarkBaseSynthetic-8      50   4100 ns/op
BenchmarkBaseSynthetic-8      50   3900 ns/op
BenchmarkShardedSynthetic-8   50   1000 ns/op
BenchmarkShardedSynthetic-8   50    990 ns/op
BenchmarkShardedSynthetic-8   50   1010 ns/op"

# 2x median speedup falls short of the 3x floor.
checksc "scale 2x rejected" 1 \
"BenchmarkBaseSynthetic-8      50   2000 ns/op
BenchmarkShardedSynthetic-8   50   1000 ns/op"

# The medians decide: a single fast outlier must not rescue a slow run.
checksc "scale outlier median rejected" 1 \
"BenchmarkBaseSynthetic-8      50   2000 ns/op
BenchmarkShardedSynthetic-8   50    100 ns/op
BenchmarkShardedSynthetic-8   50   1000 ns/op
BenchmarkShardedSynthetic-8   50   1100 ns/op"

# Either benchmark missing from the fresh run is a hard error, not a pass.
checksc "scale missing base rejected" nonzero \
"BenchmarkShardedSynthetic-8   50   1000 ns/op"
checksc "scale missing sharded rejected" nonzero \
"BenchmarkBaseSynthetic-8      50   1000 ns/op"

# A baseline without a positive floor is a configuration error, not a pass.
cat > "$tmp/scale-bad.json" <<'EOF'
{"min_speedup_x": 0}
EOF
status=0
printf '%s\n' \
"BenchmarkBaseSynthetic-8      50   4000 ns/op
BenchmarkShardedSynthetic-8   50   1000 ns/op" |
    go run ./scripts/benchcmp -scale BenchmarkBaseSynthetic BenchmarkShardedSynthetic "$tmp/scale-bad.json" \
        > "$tmp/out.txt" 2>&1 || status=$?
if [ "$status" -eq 0 ]; then
    echo "FAIL scale zero floor rejected: exit 0, want nonzero"
    sed 's/^/    /' "$tmp/out.txt"
    fail=1
else
    echo "ok   scale zero floor rejected (exit $status)"
fi

exit $fail
