#!/usr/bin/env bash
# stress.sh — sustained-load gate for the streamd network front-end.
#
# Drives scripts/loadgen against an in-process daemon: thousands of
# concurrent sessions pushing millions of tuples through the sharded
# runtime, with the loadgen verifying the service contract as it goes —
# zero dropped-but-acked tuples (exact conservation against the daemon's
# streamd_steps_total counter), bounded peak heap, and bounded per-batch
# p99 engine latency (streamd_batch_latency_ns). Any violation exits
# nonzero.
#
#   ./scripts/stress.sh            # full campaign (~4M tuples)
#   ./scripts/stress.sh --smoke    # CI preset: small load under -race
#
# Every knob has a STRESS_* environment override, e.g.:
#
#   STRESS_SESSIONS=2000 STRESS_BATCHES=32 ./scripts/stress.sh
#
# Extra arguments after the optional --smoke pass through to loadgen
# (e.g. ./scripts/stress.sh --smoke -json).
set -euo pipefail
cd "$(dirname "$0")/.."

SESSIONS="${STRESS_SESSIONS:-1000}"
BATCHES="${STRESS_BATCHES:-16}"
BATCH="${STRESS_BATCH:-256}"
PAYLOAD="${STRESS_PAYLOAD:-16}"
SHARDS="${STRESS_SHARDS:-8}"
CACHE="${STRESS_CACHE:-1024}"
SEED="${STRESS_SEED:-1}"
MAX_RSS_MB="${STRESS_MAX_RSS_MB:-2048}"
MAX_P99_MS="${STRESS_MAX_P99_MS:-1000}"
RACE=()

if [ "${1:-}" = "--smoke" ]; then
    shift
    # The CI preset: small enough to finish in seconds, race-enabled so a
    # data race anywhere on the session/engine/drain paths fails the gate.
    # The race detector slows the engine ~10x, so the latency bound is
    # correspondingly looser than the full campaign's.
    SESSIONS="${STRESS_SESSIONS:-64}"
    BATCHES="${STRESS_BATCHES:-8}"
    BATCH="${STRESS_BATCH:-128}"
    CACHE="${STRESS_CACHE:-512}"
    MAX_RSS_MB="${STRESS_MAX_RSS_MB:-1024}"
    MAX_P99_MS="${STRESS_MAX_P99_MS:-5000}"
    RACE=(-race)
fi

race_mode=off
[ "${#RACE[@]}" -gt 0 ] && race_mode=on
total=$((SESSIONS * BATCHES * BATCH))
echo "stress: ${SESSIONS} sessions x ${BATCHES} batches x ${BATCH} steps = ${total} tuples" \
    "(race ${race_mode}, heap<=${MAX_RSS_MB}MB, p99<=${MAX_P99_MS}ms)"

go run "${RACE[@]+"${RACE[@]}"}" ./scripts/loadgen \
    -sessions "$SESSIONS" \
    -batches "$BATCHES" \
    -batch "$BATCH" \
    -payload "$PAYLOAD" \
    -shards "$SHARDS" \
    -cache "$CACHE" \
    -seed "$SEED" \
    -max-rss-mb "$MAX_RSS_MB" \
    -max-p99-ms "$MAX_P99_MS" \
    "$@"
