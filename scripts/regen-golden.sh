#!/usr/bin/env bash
# regen-golden.sh — regenerate or verify cmd/stochlint's golden JSON
# (cmd/stochlint/testdata/golden.json), the byte-for-byte pin of the -json
# schema, ordering and suppression flags over the seeded corpus.
#
#   ./scripts/regen-golden.sh          # rewrite the golden from a fresh run
#   ./scripts/regen-golden.sh --check  # exit 1 if the golden is out of sync
#                                      # (leaves the committed file untouched)
#
# The --check mode is a ci.sh gate: an analyzer change that alters findings
# without a matching golden regeneration fails CI with the diff, instead of
# failing later as an opaque byte mismatch in TestGoldenJSON.
set -euo pipefail
cd "$(dirname "$0")/.."

golden=cmd/stochlint/testdata/golden.json

# The statecheck mutation corpus (cmd/stochlint/testdata/statecheck) is the
# other seeded-corpus contract: it must stay CLEAN — the golden pins findings
# for the mod corpus only, and ci.sh's mutation self-test depends on the
# committed statecheck tree passing the full suite. Verify it in both modes
# so a regen cannot silently absorb a dirtied mutation corpus.
if ! go run ./cmd/stochlint -C cmd/stochlint/testdata/statecheck ./... >/dev/null; then
    echo "statecheck mutation corpus is no longer clean; fix it before regenerating the golden" >&2
    exit 1
fi

if [ "${1:-}" = "--check" ]; then
    saved=$(mktemp)
    cp "$golden" "$saved"
    restore() { cp "$saved" "$golden"; rm -f "$saved"; }
    trap restore EXIT
    STOCHLINT_UPDATE_GOLDEN=1 go test ./cmd/stochlint -run TestGoldenJSON -count=1 >/dev/null
    if ! diff -u "$saved" "$golden"; then
        echo "golden.json out of sync with the analyzer suite; run ./scripts/regen-golden.sh and commit the result" >&2
        exit 1
    fi
    exit 0
fi

STOCHLINT_UPDATE_GOLDEN=1 go test ./cmd/stochlint -run TestGoldenJSON -count=1
echo "regenerated $golden"
