// Command benchcmp guards the repo's recorded performance baselines from
// standard go-test bench output on stdin. It has two modes:
//
//	benchcmp BENCH_hotpath.json
//	    compare a fresh `go test -bench BenchmarkStepHot` run against the
//	    medians recorded in the baseline file and fail when any benchmark's
//	    fresh median regresses past the file's regression gate;
//
//	benchcmp -overhead BenchmarkStepBare BenchmarkStepFlightRec BENCH_flightrec.json
//	    compute the fresh-median overhead of the second benchmark over the
//	    first and fail when it exceeds the file's overhead_budget_percent;
//
//	benchcmp -scale BenchmarkShardedBaseline BenchmarkShardedStep8 BENCH_shard.json
//	    compute the fresh-median speedup of the second benchmark over the
//	    first (base median / scaled median) and fail when it falls short of
//	    the file's min_speedup_x.
//
// scripts/benchcmp.sh wires all three up.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

type sample struct {
	MedianNs float64 `json:"median_ns_per_op"`
}

type benchRecord struct {
	Before *sample `json:"before"`
	After  *sample `json:"after"`
}

type benchFile struct {
	RegressionGatePercent float64                `json:"regression_gate_percent"`
	Benchmarks            map[string]benchRecord `json:"benchmarks"`
}

// overheadFile is the schema of the overhead baselines (BENCH_telemetry.json,
// BENCH_flightrec.json): only the budget is read, the recorded samples are
// documentation.
type overheadFile struct {
	OverheadBudgetPercent float64 `json:"overhead_budget_percent"`
}

// scaleFile is the schema of the speedup baselines (BENCH_shard.json): only
// the floor is read, the recorded samples are documentation.
type scaleFile struct {
	MinSpeedupX float64 `json:"min_speedup_x"`
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// readSamples collects ns/op samples per benchmark name from go-test bench
// output.
func readSamples(r io.Reader) (map[string][]float64, error) {
	fresh := map[string][]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.SplitN(fields[0], "-", 2)[0] // strip -GOMAXPROCS suffix
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err == nil {
					fresh[name] = append(fresh[name], v)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(fresh) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return fresh, nil
}

func fatal(args ...interface{}) {
	fmt.Fprintln(os.Stderr, append([]interface{}{"benchcmp:"}, args...)...)
	os.Exit(2)
}

func main() {
	args := os.Args[1:]
	if len(args) == 4 && args[0] == "-overhead" {
		runOverhead(args[1], args[2], args[3])
		return
	}
	if len(args) == 4 && args[0] == "-scale" {
		runScale(args[1], args[2], args[3])
		return
	}
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp BENCH_hotpath.json < bench-output")
		fmt.Fprintln(os.Stderr, "       benchcmp -overhead BARE_BENCH OVERHEAD_BENCH BASELINE.json < bench-output")
		fmt.Fprintln(os.Stderr, "       benchcmp -scale BASE_BENCH SCALED_BENCH BASELINE.json < bench-output")
		os.Exit(2)
	}
	runRegression(args[0])
}

func runRegression(baseline string) {
	raw, err := os.ReadFile(baseline)
	if err != nil {
		fatal(err)
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parse baseline:", err)
	}
	gate := base.RegressionGatePercent
	if gate <= 0 {
		gate = 25
	}

	fresh, err := readSamples(os.Stdin)
	if err != nil {
		fatal(err)
	}

	failed := false
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec := base.Benchmarks[name]
		if rec.After == nil {
			continue
		}
		samples, ok := fresh[name]
		if !ok {
			fmt.Printf("%-40s baseline %12.0f ns/op  MISSING from fresh run\n", name, rec.After.MedianNs)
			failed = true
			continue
		}
		m := median(samples)
		delta := (m - rec.After.MedianNs) / rec.After.MedianNs * 100
		status := "ok"
		if delta > gate {
			status = fmt.Sprintf("REGRESSION (> %.0f%%)", gate)
			failed = true
		}
		fmt.Printf("%-40s baseline %12.0f  fresh %12.0f  delta %+7.1f%%  %s\n",
			name, rec.After.MedianNs, m, delta, status)
	}
	if failed {
		os.Exit(1)
	}
}

// runOverhead gates the fresh-median overhead of overheadName over bareName
// against the baseline file's overhead_budget_percent.
func runOverhead(bareName, overheadName, baseline string) {
	raw, err := os.ReadFile(baseline)
	if err != nil {
		fatal(err)
	}
	var base overheadFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parse baseline:", err)
	}
	budget := base.OverheadBudgetPercent
	if budget <= 0 {
		budget = 10
	}

	fresh, err := readSamples(os.Stdin)
	if err != nil {
		fatal(err)
	}
	bare, ok := fresh[bareName]
	if !ok {
		fatal(bareName, "missing from fresh run")
	}
	over, ok := fresh[overheadName]
	if !ok {
		fatal(overheadName, "missing from fresh run")
	}
	bm, om := median(bare), median(over)
	overhead := (om - bm) / bm * 100
	status := "ok"
	code := 0
	if overhead > budget {
		status = fmt.Sprintf("OVER BUDGET (> %.0f%%)", budget)
		code = 1
	}
	fmt.Printf("%s over %s: bare %12.0f  with %12.0f  overhead %+6.1f%%  budget %.0f%%  %s\n",
		overheadName, bareName, bm, om, overhead, budget, status)
	os.Exit(code)
}

// runScale gates the fresh-median speedup of scaledName over baseName
// (base median / scaled median) against the baseline file's min_speedup_x.
func runScale(baseName, scaledName, baseline string) {
	raw, err := os.ReadFile(baseline)
	if err != nil {
		fatal(err)
	}
	var base scaleFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parse baseline:", err)
	}
	floor := base.MinSpeedupX
	if floor <= 0 {
		fatal("baseline", baseline, "has no positive min_speedup_x")
	}

	fresh, err := readSamples(os.Stdin)
	if err != nil {
		fatal(err)
	}
	bs, ok := fresh[baseName]
	if !ok {
		fatal(baseName, "missing from fresh run")
	}
	ss, ok := fresh[scaledName]
	if !ok {
		fatal(scaledName, "missing from fresh run")
	}
	bm, sm := median(bs), median(ss)
	if sm <= 0 {
		fatal(scaledName, "has non-positive median")
	}
	speedup := bm / sm
	status := "ok"
	code := 0
	if speedup < floor {
		status = fmt.Sprintf("TOO SLOW (< %.1fx)", floor)
		code = 1
	}
	fmt.Printf("%s vs %s: base %12.0f  scaled %12.0f  speedup %5.2fx  floor %.1fx  %s\n",
		scaledName, baseName, bm, sm, speedup, floor, status)
	os.Exit(code)
}
