// Command benchcmp compares a fresh `go test -bench BenchmarkStepHot` run
// (read from stdin, standard go-test bench output) against the medians
// recorded in BENCH_hotpath.json and fails when any benchmark's fresh median
// regresses past the file's regression gate. scripts/benchcmp.sh wires it up.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type sample struct {
	MedianNs float64 `json:"median_ns_per_op"`
}

type benchRecord struct {
	Before *sample `json:"before"`
	After  *sample `json:"after"`
}

type benchFile struct {
	RegressionGatePercent float64                `json:"regression_gate_percent"`
	Benchmarks            map[string]benchRecord `json:"benchmarks"`
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp BENCH_hotpath.json < bench-output")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp: parse baseline:", err)
		os.Exit(2)
	}
	gate := base.RegressionGatePercent
	if gate <= 0 {
		gate = 25
	}

	// Collect ns/op samples per benchmark name from the go-test output.
	fresh := map[string][]float64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.SplitN(fields[0], "-", 2)[0] // strip -GOMAXPROCS suffix
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err == nil {
					fresh[name] = append(fresh[name], v)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp: read stdin:", err)
		os.Exit(2)
	}
	if len(fresh) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmark lines on stdin")
		os.Exit(2)
	}

	failed := false
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec := base.Benchmarks[name]
		if rec.After == nil {
			continue
		}
		samples, ok := fresh[name]
		if !ok {
			fmt.Printf("%-40s baseline %12.0f ns/op  MISSING from fresh run\n", name, rec.After.MedianNs)
			failed = true
			continue
		}
		m := median(samples)
		delta := (m - rec.After.MedianNs) / rec.After.MedianNs * 100
		status := "ok"
		if delta > gate {
			status = fmt.Sprintf("REGRESSION (> %.0f%%)", gate)
			failed = true
		}
		fmt.Printf("%-40s baseline %12.0f  fresh %12.0f  delta %+7.1f%%  %s\n",
			name, rec.After.MedianNs, m, delta, status)
	}
	if failed {
		os.Exit(1)
	}
}
