// Command loadgen drives a streamd daemon with many concurrent client
// sessions and verifies the service-level contract under load:
//
//   - zero dropped-but-acked tuples: every batch a client saw acknowledged
//     was ingested exactly once (in-process runs prove it exactly against
//     the daemon's streamd_steps_total conservation counter);
//   - bounded memory: peak heap stays under -max-rss-mb;
//   - bounded tail latency: the daemon's per-batch p99 (from the
//     streamd_batch_latency_ns histogram) stays under -max-p99-ms.
//
// With -addr empty (the default) it starts an in-process daemon on a
// loopback ephemeral port, which enables the registry-based checks; with
// -addr set it targets an external daemon and verifies acknowledgment
// completeness only. Exit status is nonzero on any violation, which is what
// lets scripts/stress.sh act as a gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stochstream/internal/shardrt"
	"stochstream/internal/stats"
	"stochstream/internal/streamd"
	"stochstream/internal/streamd/client"
	"stochstream/internal/streamd/wire"
)

type report struct {
	Sessions     int      `json:"sessions"`
	Batches      int      `json:"batches_per_session"`
	Batch        int      `json:"steps_per_batch"`
	Tuples       int64    `json:"tuples_sent"`
	Pairs        int64    `json:"pairs_received"`
	Sheds        int64    `json:"sheds_observed"`
	ElapsedMS    float64  `json:"elapsed_ms"`
	TuplesPerSec float64  `json:"tuples_per_sec"`
	PeakHeapMB   float64  `json:"peak_heap_mb"`
	P99BatchMS   float64  `json:"p99_batch_ms"`
	StepsCounter int64    `json:"steps_total_counter"`
	Violations   []string `json:"violations"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(argv []string, out *os.File) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "", "daemon address; empty starts an in-process daemon")
	sessions := fs.Int("sessions", 64, "concurrent client sessions")
	batches := fs.Int("batches", 16, "batches per session")
	batch := fs.Int("batch", 256, "steps per batch")
	payload := fs.Int("payload", 16, "payload bytes per side per step")
	shards := fs.Int("shards", 8, "in-process daemon: runtime shards")
	cache := fs.Int("cache", 1024, "in-process daemon: total cache slots")
	queue := fs.Int("queue", 0, "in-process daemon: ingest queue depth (0 = default)")
	seed := fs.Uint64("seed", 1, "workload and backoff seed")
	maxRSS := fs.Float64("max-rss-mb", 0, "fail if peak heap exceeds this (0 disables)")
	maxP99 := fs.Float64("max-p99-ms", 0, "fail if daemon batch p99 exceeds this (0 disables, in-process only)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *batch > wire.MaxBatchSteps {
		fmt.Fprintf(os.Stderr, "loadgen: -batch %d exceeds wire.MaxBatchSteps %d\n", *batch, wire.MaxBatchSteps)
		return 2
	}

	var srv *streamd.Server
	target := *addr
	if target == "" {
		var err error
		srv, err = streamd.Start(streamd.Config{
			Runtime:    shardrt.Config{Shards: *shards, TotalCache: *cache, Seed: *seed},
			Listen:     "127.0.0.1:0",
			QueueDepth: *queue,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: start daemon: %v\n", err)
			return 1
		}
		defer srv.Close()
		target = srv.Addr()
	}

	// Peak-heap sampler: ReadMemStats on a short cadence while the load
	// runs. HeapAlloc is the live-set proxy the bound is defined over.
	var peakHeap atomic.Uint64
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				for {
					cur := peakHeap.Load()
					if ms.HeapAlloc <= cur || peakHeap.CompareAndSwap(cur, ms.HeapAlloc) {
						break
					}
				}
			}
		}
	}()

	var (
		wg       sync.WaitGroup
		pairs    atomic.Int64
		failures atomic.Int64

		errMu    sync.Mutex
		firstErr error
	)
	recordErr := func(err error) {
		failures.Add(1)
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	for id := 0; id < *sessions; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := client.Dial(client.Options{
				Addr:        target,
				Session:     fmt.Sprintf("loadgen-%d", id),
				Seed:        *seed + uint64(id)*7919,
				MaxAttempts: 1000,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  100 * time.Millisecond,
			})
			if err != nil {
				recordErr(fmt.Errorf("session %d: dial: %w", id, err))
				return
			}
			defer cl.Close()
			rng := stats.NewRNG(*seed ^ uint64(id)<<17)
			steps := make([]wire.Step, *batch)
			for b := 0; b < *batches; b++ {
				for i := range steps {
					steps[i] = wire.Step{
						RKey:     int64(rng.IntN(64)),
						SKey:     int64(rng.IntN(64)),
						RPayload: payloadBytes(rng, *payload),
						SPayload: payloadBytes(rng, *payload),
					}
				}
				p, err := cl.Ingest(steps)
				if err != nil {
					recordErr(fmt.Errorf("session %d batch %d: %w", id, b, err))
					return
				}
				pairs.Add(int64(len(p)))
			}
			if got := cl.Acked(); got != uint64(*batches) {
				recordErr(fmt.Errorf("session %d: acked %d of %d batches", id, got, *batches))
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopSampler)
	<-samplerDone

	rep := report{
		Sessions:     *sessions,
		Batches:      *batches,
		Batch:        *batch,
		Tuples:       int64(*sessions) * int64(*batches) * int64(*batch),
		Pairs:        pairs.Load(),
		ElapsedMS:    float64(elapsed.Nanoseconds()) / 1e6,
		TuplesPerSec: float64(int64(*sessions)*int64(*batches)*int64(*batch)) / elapsed.Seconds(),
		PeakHeapMB:   float64(peakHeap.Load()) / (1 << 20),
	}
	if firstErr != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("%d session failures, first: %v", failures.Load(), firstErr))
	}

	if srv != nil {
		snap := srv.Registry().Snapshot()
		rep.StepsCounter = snap.Counters["streamd_steps_total"]
		rep.Sheds = snap.Counters["streamd_shed_queue_total"] +
			snap.Counters["streamd_shed_mem_total"] +
			snap.Counters["streamd_shed_slow_total"]
		if h, ok := snap.Histograms["streamd_batch_latency_ns"]; ok {
			rep.P99BatchMS = h.P99 / 1e6
		}
		// The conservation oracle: the daemon ingested exactly what the
		// clients sent — nothing dropped after an acknowledgment, nothing
		// double-ingested through shed/retry cycles.
		if failures.Load() == 0 && rep.StepsCounter != rep.Tuples {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"conservation: daemon ingested %d steps, clients sent %d", rep.StepsCounter, rep.Tuples))
		}
		if n := snap.Counters["streamd_internal_errors_total"]; n != 0 {
			rep.Violations = append(rep.Violations, fmt.Sprintf("%d internal errors", n))
		}
		if *maxP99 > 0 && rep.P99BatchMS > *maxP99 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"p99 batch latency %.2fms exceeds bound %.2fms", rep.P99BatchMS, *maxP99))
		}
	}
	if *maxRSS > 0 && rep.PeakHeapMB > *maxRSS {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"peak heap %.1fMB exceeds bound %.1fMB", rep.PeakHeapMB, *maxRSS))
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		fmt.Fprintf(out, "loadgen: %d sessions x %d batches x %d steps = %d tuples in %.0fms (%.0f tuples/s)\n",
			rep.Sessions, rep.Batches, rep.Batch, rep.Tuples, rep.ElapsedMS, rep.TuplesPerSec)
		fmt.Fprintf(out, "loadgen: %d pairs, %d sheds ridden out, peak heap %.1fMB, batch p99 %.2fms\n",
			rep.Pairs, rep.Sheds, rep.PeakHeapMB, rep.P99BatchMS)
	}
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "loadgen: VIOLATION: %s\n", v)
		}
		return 1
	}
	fmt.Fprintln(out, "loadgen: OK")
	return 0
}

func payloadBytes(rng *stats.RNG, n int) []byte {
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}
