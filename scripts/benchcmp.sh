#!/usr/bin/env bash
# benchcmp.sh — guard the hot-path speedups recorded in BENCH_hotpath.json:
# runs the BenchmarkStepHot* suite fresh (3 counts) and fails if any
# benchmark's fresh median ns/op regresses more than the file's
# regression_gate_percent (25%) past the recorded 'after' median.
#
#   ./scripts/benchcmp.sh            # full gate (3 x 50 iterations)
#   ./scripts/benchcmp.sh -benchtime 20x -count 1   # quicker, noisier
set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=(-benchtime 50x -count 3)
if [ "$#" -gt 0 ]; then
    ARGS=("$@")
fi

go test -run '^$' -bench BenchmarkStepHot "${ARGS[@]}" . |
    tee /dev/stderr |
    go run ./scripts/benchcmp BENCH_hotpath.json
