#!/usr/bin/env bash
# benchcmp.sh — guard the repo's recorded performance baselines:
#
#   1. hot path: runs the BenchmarkStepHot* suite fresh (3 counts) and fails
#      if any benchmark's fresh median ns/op regresses more than
#      BENCH_hotpath.json's regression_gate_percent (25%) past the recorded
#      'after' median;
#   2. flight recorder: runs BenchmarkStepBare vs BenchmarkStepFlightRec and
#      fails if the fresh-median overhead of the instrumented run exceeds
#      BENCH_flightrec.json's overhead_budget_percent (10%);
#   3. batched ingress: runs BenchmarkStepLoop256 vs BenchmarkStepBatch256
#      and fails if StepBatch's fresh-median overhead over the looped Step
#      exceeds BENCH_shard.json's overhead_budget_percent (10%);
#   4. sharded runtime: runs BenchmarkShardedBaseline vs BenchmarkShardedStep8
#      and fails if the fresh-median speedup falls below BENCH_shard.json's
#      min_speedup_x (3x);
#   5. network daemon: runs BenchmarkStreamdDirect vs BenchmarkStreamdDaemon
#      and fails if the daemon's fresh-median per-batch overhead over the
#      direct shardrt.IngestBatch call exceeds BENCH_streamd.json's
#      overhead_budget_percent (15%).
#
#   ./scripts/benchcmp.sh            # full gate (3 x 50 iterations)
#   ./scripts/benchcmp.sh -benchtime 20x -count 1   # quicker, noisier
#
# Lint budget: stochlint's wall time is tracked separately in
# BENCH_stochlint.json (load vs analysis phase, serial vs -parallel). It is
# not gated here — the analyzers run on every ci.sh invocation, so the
# budget contract is simply that a full stochlint run stays an order of
# magnitude under the test suite's wall time (budget_gate_ms in that file).
# Regenerate its numbers with: go run ./cmd/stochlint -timing ./...
# Note the per-analyzer aggregates in the -timing output sum each worker's
# wall time: with -parallel > 1 concurrent workers overlap, so the analyzer
# column can add up to more than analyze_ms — compare budgets against the
# analyze_ms wall time, not the per-analyzer sum.
set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=(-benchtime 50x -count 3)
# The shard gates measure single ~1.4ms global steps, so 50 iterations per
# run is dominated by run-to-run CPU drift; they get a higher iteration
# floor by default. Explicit arguments override both.
SHARD_ARGS=(-benchtime 500x -count 5)
if [ "$#" -gt 0 ]; then
    ARGS=("$@")
    SHARD_ARGS=("$@")
fi

go test -run '^$' -bench BenchmarkStepHot "${ARGS[@]}" . |
    tee /dev/stderr |
    go run ./scripts/benchcmp BENCH_hotpath.json

go test -run '^$' -bench 'BenchmarkStep(Bare|FlightRec)$' "${ARGS[@]}" . |
    tee /dev/stderr |
    go run ./scripts/benchcmp -overhead BenchmarkStepBare BenchmarkStepFlightRec BENCH_flightrec.json

go test -run '^$' -bench 'BenchmarkStep(Loop|Batch)256$' "${SHARD_ARGS[@]}" . |
    tee /dev/stderr |
    go run ./scripts/benchcmp -overhead BenchmarkStepLoop256 BenchmarkStepBatch256 BENCH_shard.json

go test -run '^$' -bench 'BenchmarkSharded(Baseline|Step8)$' "${SHARD_ARGS[@]}" . |
    tee /dev/stderr |
    go run ./scripts/benchcmp -scale BenchmarkShardedBaseline BenchmarkShardedStep8 BENCH_shard.json

# The daemon benchmarks measure ~18ms round trips, so the default iteration
# count is already minutes of wall time; they keep the base ARGS.
go test -run '^$' -bench 'BenchmarkStreamd(Direct|Daemon)$' "${ARGS[@]}" . |
    tee /dev/stderr |
    go run ./scripts/benchcmp -overhead BenchmarkStreamdDirect BenchmarkStreamdDaemon BENCH_streamd.json
