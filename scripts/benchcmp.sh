#!/usr/bin/env bash
# benchcmp.sh — guard the hot-path speedups recorded in BENCH_hotpath.json:
# runs the BenchmarkStepHot* suite fresh (3 counts) and fails if any
# benchmark's fresh median ns/op regresses more than the file's
# regression_gate_percent (25%) past the recorded 'after' median.
#
#   ./scripts/benchcmp.sh            # full gate (3 x 50 iterations)
#   ./scripts/benchcmp.sh -benchtime 20x -count 1   # quicker, noisier
#
# Lint budget: stochlint's wall time is tracked separately in
# BENCH_stochlint.json (load vs analysis phase, serial vs -parallel). It is
# not gated here — the analyzers run on every ci.sh invocation, so the
# budget contract is simply that a full stochlint run stays an order of
# magnitude under the test suite's wall time (budget_gate_ms in that file).
# Regenerate its numbers with: go run ./cmd/stochlint -timing ./...
set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=(-benchtime 50x -count 3)
if [ "$#" -gt 0 ]; then
    ARGS=("$@")
fi

go test -run '^$' -bench BenchmarkStepHot "${ARGS[@]}" . |
    tee /dev/stderr |
    go run ./scripts/benchcmp BENCH_hotpath.json
