#!/usr/bin/env bash
# ci.sh — the repo's one-command gate: vet, build, then the full test suite
# under the race detector (the telemetry registry and the engine's concurrent
# Run path are exercised by -race tests). Run from the repo root:
#
#   ./scripts/ci.sh
#
# Extra go-test flags pass through, e.g. ./scripts/ci.sh -run Telemetry -v
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race "$@" ./...
