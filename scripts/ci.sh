#!/usr/bin/env bash
# ci.sh — the repo's one-command gate: vet, build, the full test suite under
# the race detector (the telemetry registry, the engine's concurrent Run path
# and HEEB's parallel scorer are exercised by -race tests), then a short
# benchmark smoke over the hot-path suite so a build that breaks the
# benchmarks cannot land. Run from the repo root:
#
#   ./scripts/ci.sh
#
# Extra go-test flags pass through, e.g. ./scripts/ci.sh -run Telemetry -v
# For the before/after regression gate, run ./scripts/benchcmp.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race "$@" ./...
go test -run '^$' -bench BenchmarkStep -benchtime 100x .
