#!/usr/bin/env bash
# ci.sh — the repo's one-command gate, in order:
#
#   1. gofmt            — no unformatted files (testdata corpora exempt:
#                         some are deliberately unidiomatic)
#   2. go vet           — default pass plus every registered vet analyzer,
#                         run before stochlint so toolchain-level breakage
#                         is named before custom-analyzer findings
#   3. stochlint        — the custom determinism/correctness analyzer suite
#                         (internal/lintrules, docs/static-analysis.md)
#   4. stochlint self-test — the driver must exit 1 on the seeded corpus;
#                         a silently broken analyzer suite cannot pass CI
#   5. concurrency lint — the goleak/chandiscipline/atomicfield/mergedet
#                         corpora plus locksafe, the golden-JSON sync check
#                         (scripts/regen-golden.sh --check), and an exit-1
#                         self-test proving all four concurrency analyzers
#                         still fire on the seeded shardrt corpus
#   6. state contracts  — the snapcomplete/fingerprintcover/wirexhaustive
#                         corpora, the clean statecheck corpus, a mutation
#                         self-test (deleting a marked snapshot field-capture,
#                         and separately a marked wire frame case, must make
#                         stochlint exit 1 naming the field/constant), and an
#                         exit-1 check that all three fire on the seeded mod
#                         corpus (docs/static-analysis.md, "State contracts")
#   7. govulncheck      — known-vuln scan, soft-skipped offline
#   8. build
#   9. go test -race    — the full suite under the race detector
#  10. chaos smoke      — seeded fault-injection campaign against the full
#                         degradation ladder (docs/fault-tolerance.md)
#  11. flight recorder  — race-detected flightrec suite plus the seeded
#                         bundle-on-fault chaos run as a named, grep-able gate
#                         (docs/observability.md)
#  12. shard runtime    — race-detected shardrt suite plus the recorded
#                         sharded-speedup gate (BENCH_shard.json, ≥3x at 8
#                         shards; docs/performance.md)
#  13. streamd service  — race-detected daemon/wire/client suites, the seeded
#                         network-chaos campaign as a named gate, and the
#                         race-enabled stress smoke (scripts/stress.sh --smoke:
#                         concurrent sessions through a live daemon with
#                         conservation, heap and p99 bounds; docs/service.md)
#  14. fuzz smoke       — 10s of FuzzStepEquivalence over the committed corpus
#  15. gate self-test   — scripts/benchcmp_test.sh proves the perf gate fails
#  16. bench smoke      — a build that breaks the benchmarks cannot land
#
# Run from the repo root:
#
#   ./scripts/ci.sh
#
# Extra go-test flags pass through to the test phase, e.g.
# ./scripts/ci.sh -run Telemetry -v. For the before/after perf regression
# gate, run ./scripts/benchcmp.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
# Corpus files under testdata seed deliberate violations (including layout);
# everything else must be gofmt-clean.
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt: unformatted files:"
    echo "$unformatted"
    exit 1
fi

echo "==> go vet (default)"
go vet ./...

echo "==> go vet (all registered analyzers)"
# Enumerate the toolchain's full analyzer set dynamically so new checks are
# picked up on toolchain upgrades; fall back to the default pass (already
# run) if enumeration yields nothing.
vet_flags=$(go tool vet help 2>&1 | awk '/^\t[a-z]/ || /^    [a-z]/ {printf "-%s=true ", $1}')
if [ -n "$vet_flags" ]; then
    # shellcheck disable=SC2086
    go vet $vet_flags ./...
else
    echo "vet analyzer enumeration failed; default pass only"
fi

echo "==> stochlint"
go run ./cmd/stochlint ./...

echo "==> stochlint self-test (seeded corpus must fail)"
# The golden corpus under cmd/stochlint/testdata/mod seeds one finding of
# every interesting shape; the driver exiting 0 there means the analyzer
# suite has gone silently blind.
rc=0
go run ./cmd/stochlint -C cmd/stochlint/testdata/mod ./... >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "stochlint self-test failed: expected exit 1 on the seeded corpus, got $rc"
    exit 1
fi

echo "==> concurrency lint suite (corpora + golden sync + exit-1 self-test)"
# The four concurrency analyzers' corpora (each with an interprocedural-only
# case) and the locksafe copies, as a named gate.
go test -run 'TestGoleak|TestChandiscipline|TestAtomicfield|TestMergedet|TestLocksafe' -count=1 ./internal/lintrules
# The committed golden must match a fresh run of the suite.
./scripts/regen-golden.sh --check
# Exit-1 self-test scoped to the concurrency seeds: the seeded shardrt
# corpus must fail the driver AND trip every analyzer of the concurrency
# suite — one of them going silently blind is exactly what this catches.
rc=0
conc_json=$(go run ./cmd/stochlint -C cmd/stochlint/testdata/mod -json ./internal/shardrt/... 2>/dev/null) || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "concurrency self-test: expected exit 1 on the seeded shardrt corpus, got $rc"
    exit 1
fi
for a in goleak chandiscipline atomicfield mergedet; do
    if ! grep -q "\"analyzer\": \"$a\"" <<<"$conc_json"; then
        echo "concurrency self-test: no $a finding in the seeded shardrt corpus"
        exit 1
    fi
done

echo "==> state contracts (corpora + clean corpus + mutation self-test)"
# The three state-integrity analyzers' corpora (each with an
# interprocedural-only case) plus the suite-shape pin.
go test -run 'TestSnapcomplete|TestFingerprintcover|TestWirexhaustive|TestScoping' -count=1 ./internal/lintrules
# The statecheck mutation corpus is clean as committed: the full suite must
# pass it, or the mutation self-test below would be meaningless.
go run ./cmd/stochlint -C cmd/stochlint/testdata/statecheck ./...
# Mutation self-test: drop the marked snapshot field-capture and the marked
# wire frame case in throwaway copies; each mutant must fail the driver with
# a finding that names exactly what was dropped. An analyzer that stays
# silent here has gone blind to the one regression it exists to catch.
statecheck_tmp=$(mktemp -d)
trap 'rm -rf "$statecheck_tmp"' EXIT
cp -r cmd/stochlint/testdata/statecheck "$statecheck_tmp/snap"
sed -i '/ci:mutate-snapshot/d' "$statecheck_tmp/snap/internal/engine/engine.go"
rc=0
snap_out=$(go run ./cmd/stochlint -C "$statecheck_tmp/snap" -rules snapcomplete ./... 2>/dev/null) || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "statecheck self-test: expected exit 1 on the snapshot mutant, got $rc"
    exit 1
fi
if ! grep -q 'persistent field Total' <<<"$snap_out"; then
    echo "statecheck self-test: snapshot mutant finding does not name the dropped field Total:"
    echo "$snap_out"
    exit 1
fi
cp -r cmd/stochlint/testdata/statecheck "$statecheck_tmp/wire"
sed -i '/ci:mutate-wire/d' "$statecheck_tmp/wire/internal/streamd/streamd.go"
rc=0
wire_out=$(go run ./cmd/stochlint -C "$statecheck_tmp/wire" -rules wirexhaustive ./... 2>/dev/null) || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "statecheck self-test: expected exit 1 on the wire mutant, got $rc"
    exit 1
fi
if ! grep -q 'TypeData' <<<"$wire_out"; then
    echo "statecheck self-test: wire mutant finding does not name the dropped constant TypeData:"
    echo "$wire_out"
    exit 1
fi
rm -rf "$statecheck_tmp"
trap - EXIT
# Exit-1 check on the seeded mod corpus: all three state analyzers must fire
# there (the golden pins the exact findings; this names a blind analyzer).
rc=0
state_json=$(go run ./cmd/stochlint -C cmd/stochlint/testdata/mod -json -rules snapcomplete,fingerprintcover,wirexhaustive ./... 2>/dev/null) || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "statecheck self-test: expected exit 1 on the seeded mod corpus, got $rc"
    exit 1
fi
for a in snapcomplete fingerprintcover wirexhaustive; do
    if ! grep -q "\"analyzer\": \"$a\"" <<<"$state_json"; then
        echo "statecheck self-test: no $a finding in the seeded mod corpus"
        exit 1
    fi
done

echo "==> govulncheck (soft-skip when offline)"
GOVULNCHECK=golang.org/x/vuln/cmd/govulncheck@v1.1.4
if vuln_out=$(go run "$GOVULNCHECK" ./... 2>&1); then
    echo "$vuln_out"
elif grep -qiE 'no such host|dial tcp|connection refused|i/o timeout|proxy\.golang\.org|TLS handshake|temporary failure|network is unreachable' <<<"$vuln_out"; then
    echo "govulncheck skipped: module proxy unreachable in this environment"
else
    echo "$vuln_out"
    exit 1
fi

echo "==> build"
go build ./...

echo "==> test (-race)"
go test -race "$@" ./...

echo "==> chaos smoke (seeded fault injection)"
# The -race phase above already ran these once; this re-runs them undetected
# at full speed as a freestanding, grep-able gate so a chaos regression is
# named in CI output rather than buried in the package list.
go test -run '^TestChaos' -count=1 -v ./internal/faultinject | grep -E '^(=== RUN|--- (PASS|FAIL)|PASS|FAIL|ok)'

echo "==> flight recorder (spans, lifecycle, bundles)"
# Freestanding, grep-able reruns of the observability contract: the recorder
# suite under the race detector, then the seeded chaos campaign that must
# produce a loadable diagnostics bundle for every ladder downgrade. The
# overhead budget itself (BENCH_flightrec.json) is gated by
# scripts/benchcmp.sh, not here.
go test -race -count=1 ./internal/flightrec
go test -run '^TestChaosBundlePerFault$' -count=1 -v ./internal/faultinject | grep -E '^(=== RUN|--- (PASS|FAIL)|PASS|FAIL|ok)'

echo "==> shard runtime (race suite + sharded-speedup gate)"
# Freestanding rerun of the sharded-runtime contract under the race detector
# (merge determinism, differential vs per-shard references, rebalancing,
# sharded checkpoints), then the recorded speedup floor: 8 shards must stay
# ≥ BENCH_shard.json's min_speedup_x over the single-engine baseline. The
# StepBatch overhead budget in the same file is gated by scripts/benchcmp.sh.
go test -race -count=1 ./internal/shardrt
go test -run '^$' -bench 'BenchmarkSharded(Baseline|Step8)$' -benchtime 200x -count 3 . |
    go run ./scripts/benchcmp -scale BenchmarkShardedBaseline BenchmarkShardedStep8 BENCH_shard.json

echo "==> streamd service (race suites + network chaos + stress smoke)"
# Freestanding rerun of the network front-end contract under the race
# detector: protocol edges, overload shedding, drain/restart byte-identity,
# the wire format and the resuming client. Then the seeded network-fault
# campaign as a named, grep-able gate, and the race-enabled stress smoke —
# concurrent sessions against a live daemon with exact tuple conservation,
# bounded heap and bounded p99 (docs/service.md). The daemon-overhead budget
# itself (BENCH_streamd.json) is gated by scripts/benchcmp.sh, not here.
go test -race -count=1 ./internal/streamd/... ./cmd/stochstreamd
go test -run '^TestNetworkChaos' -count=1 -v ./internal/faultinject | grep -E '^(=== RUN|--- (PASS|FAIL)|PASS|FAIL|ok)'
./scripts/stress.sh --smoke

echo "==> fuzz smoke (committed corpus + 10s)"
go test -run '^$' -fuzz '^FuzzStepEquivalence$' -fuzztime 10s ./internal/engine

echo "==> perf gate self-test"
./scripts/benchcmp_test.sh

echo "==> bench smoke"
go test -run '^$' -bench BenchmarkStep -benchtime 100x .

echo "ci: all gates passed"
