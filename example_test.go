package stochstream_test

import (
	"fmt"

	"stochstream"
)

// Joining two trending streams with HEEB and comparing against the offline
// optimum.
func ExampleRunJoin() {
	r := &stochstream.LinearTrend{Slope: 1, Intercept: -1, Noise: stochstream.BoundedNormal(1, 10)}
	s := &stochstream.LinearTrend{Slope: 1, Intercept: 0, Noise: stochstream.BoundedNormal(2, 15)}
	rng := stochstream.NewRNG(42)
	rVals := r.Generate(rng, 2000)
	sVals := s.Generate(rng, 2000)

	cfg := stochstream.JoinConfig{
		CacheSize: 10,
		Warmup:    -1,
		Procs:     [2]stochstream.Process{r, s},
	}
	heeb := stochstream.NewHEEB(stochstream.HEEBOptions{LifetimeEstimate: 3})
	res := stochstream.RunJoin(rVals, sVals, heeb, cfg, 1)
	opt := stochstream.OptOfflineJoin(rVals, sVals, 10, 0)
	optJoins := opt.CountAfter(cfg.EffectiveWarmup() - 1)
	fmt.Printf("HEEB achieves at least 95%% of OPT: %v\n", res.Joins*100 >= optJoins*95)
	// Output:
	// HEEB achieves at least 95% of OPT: true
}

// Computing ECBs and testing dominance (Theorem 3's optimality condition).
func ExampleDominates() {
	partner := &stochstream.Stationary{P: stochstream.NewTable(0, []float64{1, 3})}
	h := stochstream.NewHistory(0)
	hot := stochstream.JoinECB(partner, h, 1, 10)  // p = 0.75 per step
	cold := stochstream.JoinECB(partner, h, 0, 10) // p = 0.25 per step
	fmt.Println(stochstream.Dominates(hot, cold))
	fmt.Println(stochstream.Dominates(cold, hot))
	// Output:
	// true
	// false
}

// Caching with the offline-optimal LFD as a yardstick.
func ExampleRunCache() {
	refs := []int{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	res := stochstream.RunCache(refs, &stochstream.LFD{}, stochstream.CacheConfig{Capacity: 3}, 1)
	fmt.Println("misses:", res.Misses)
	// Output:
	// misses: 7
}

// Detecting a stream's model class from observations.
func ExampleDetectModel() {
	truth := &stochstream.LinearTrend{Slope: 2, Intercept: 0, Noise: stochstream.BoundedNormal(1.5, 8)}
	series := truth.Generate(stochstream.NewRNG(7), 500)
	rep, err := stochstream.DetectModel(series)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(rep.Kind)
	// Output:
	// linear-trend
}

// The Section 2 reduction from caching to joining (Theorem 1).
func ExampleReduceCachingToJoining() {
	refs := []int{7, 8, 7}
	r, s := stochstream.ReduceCachingToJoining(refs)
	// The supply tuple emitted at the first reference of 7 is exactly the
	// encoded pair matching 7's next occurrence.
	fmt.Println(s[0] == r[2])
	// Output:
	// true
}

// A multi-way join: one hub stream joined by two spokes sharing a cache.
func ExampleRunMultiJoin() {
	mk := func() stochstream.Process {
		return &stochstream.LinearTrend{Slope: 1, Intercept: 0, Noise: stochstream.BoundedNormal(2, 12)}
	}
	cfg := stochstream.MultiJoinConfig{
		Procs:     []stochstream.Process{mk(), mk(), mk()},
		Edges:     []stochstream.MultiJoinEdge{{A: 0, B: 1}, {A: 0, B: 2}},
		CacheSize: 9,
		Warmup:    -1,
	}
	rng := stochstream.NewRNG(5)
	streams := make([][]int, 3)
	for i := range streams {
		streams[i] = cfg.Procs[i].Generate(rng, 2000)
	}
	res, err := stochstream.RunMultiJoin(streams, &stochstream.MultiHEEB{}, cfg, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The hub participates in both joins, so HEEB gives it the cache share.
	fmt.Println("hub favored:", res.Occupancy[0] > res.Occupancy[1] && res.Occupancy[0] > res.Occupancy[2])
	// Output:
	// hub favored: true
}

// Embedding the online operator: push tuples, receive joined pairs.
func ExampleNewOperator() {
	r := &stochstream.LinearTrend{Slope: 1, Intercept: 0, Noise: stochstream.BoundedNormal(1, 5)}
	s := &stochstream.LinearTrend{Slope: 1, Intercept: 0, Noise: stochstream.BoundedNormal(1, 5)}
	op, err := stochstream.NewOperator(stochstream.OperatorConfig{
		CacheSize: 4,
		Procs:     [2]stochstream.Process{r, s},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Feed a match one step apart: R emits key 7, then S emits key 7.
	op.Step(stochstream.OperatorTuple{Key: 7, Payload: "reading#1"}, stochstream.OperatorTuple{Key: 99})
	pairs := op.Step(stochstream.OperatorTuple{Key: 98}, stochstream.OperatorTuple{Key: 7, Payload: "reading#2"})
	for _, p := range pairs {
		fmt.Printf("matched %v with %v at t=%d\n", p.R.Payload, p.S.Payload, p.Time)
	}
	// Output:
	// matched reading#1 with reading#2 at t=1
}
