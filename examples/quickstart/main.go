// Quickstart: join two drifting sensor streams with a 10-tuple cache and
// compare HEEB's model-driven replacement against random replacement and the
// offline optimum.
package main

import (
	"fmt"

	"stochstream"
)

func main() {
	// Two streams with an increasing linear trend and bounded normal noise
	// (the paper's TOWER setup): R lags one step behind S.
	r := &stochstream.LinearTrend{Slope: 1, Intercept: -1, Noise: stochstream.BoundedNormal(1, 10)}
	s := &stochstream.LinearTrend{Slope: 1, Intercept: 0, Noise: stochstream.BoundedNormal(2, 15)}

	// Sample 5000 tuples from each stream.
	const n = 5000
	rng := stochstream.NewRNG(42)
	rVals := r.Generate(rng, n)
	sVals := s.Generate(rng, n)

	cfg := stochstream.JoinConfig{
		CacheSize: 10,
		Warmup:    -1, // default: 4x the cache size
		Procs:     [2]stochstream.Process{r, s},
	}

	// HEEB: scores every candidate tuple by its estimated expected benefit
	// under the stream models and discards the lowest.
	heeb := stochstream.NewHEEB(stochstream.HEEBOptions{
		Mode:             stochstream.HEEBDirect,
		LifetimeEstimate: 3, // trend advances ~2 noise stdevs in 3 steps
	})
	heebRes := stochstream.RunJoin(rVals, sVals, heeb, cfg, 1)

	// RAND: the oblivious baseline.
	randRes := stochstream.RunJoin(rVals, sVals, &stochstream.RandPolicy{}, cfg, 1)

	// OPT-offline: the (unachievable online) upper bound.
	opt := stochstream.OptOfflineJoin(rVals, sVals, cfg.CacheSize, 0)
	optJoins := opt.CountAfter(cfg.EffectiveWarmup() - 1)

	fmt.Println("join results produced from a 10-tuple cache over 5000 arrivals:")
	fmt.Printf("  OPT-offline (upper bound): %d\n", optJoins)
	fmt.Printf("  HEEB                     : %d (%.0f%% of OPT)\n",
		heebRes.Joins, 100*float64(heebRes.Joins)/float64(optJoins))
	fmt.Printf("  RAND                     : %d (%.0f%% of OPT)\n",
		randRes.Joins, 100*float64(randRes.Joins)/float64(optJoins))
}
