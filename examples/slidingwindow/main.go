// Slidingwindow: Section 7 of the paper as a runnable scenario. Under
// sliding-window join semantics, the hardwired heuristics misrank candidate
// tuples — PROB is short-sighted (prefers a high-probability tuple that
// expires immediately) and LIFE is pessimistic (prefers a long-lived tuple
// that almost never joins) — while the window-clipped HEEB orders them
// sensibly. The example first reproduces the paper's x1/x2/x3 ranking
// analytically, then demonstrates the effect end-to-end on windowed streams.
package main

import (
	"fmt"

	"stochstream"
)

func main() {
	analytical()
	fmt.Println()
	endToEnd()
}

// analytical reproduces the Section 7 example: three candidate tuples under
// a stationary partner with join probabilities p and remaining window
// lifetimes l.
func analytical() {
	type cand struct {
		name string
		p    float64
		l    int
	}
	cands := []cand{
		{"x1", 0.50, 1},
		{"x2", 0.49, 50},
		{"x3", 0.01, 51},
	}
	alpha := stochstream.AlphaForLifetime(10)
	fmt.Println("Section 7 example (stationary partner, sliding window):")
	fmt.Printf("  %-4s %-6s %-9s %-12s %-12s %s\n", "", "p", "lifetime", "PROB score", "LIFE score", "window-HEEB")
	for _, c := range cands {
		l := stochstream.LWindow{Inner: stochstream.LExp{Alpha: alpha}, Remaining: c.l}
		var h float64
		for dt := 1; dt <= c.l; dt++ {
			h += c.p * l.At(dt)
		}
		fmt.Printf("  %-4s %-6.2f %-9d %-12.2f %-12.2f %.3f\n",
			c.name, c.p, c.l, c.p, c.p*float64(c.l), h)
	}
	fmt.Println("  PROB keeps x1 over x2 (short-sighted); LIFE keeps x3 over x1")
	fmt.Println("  (pessimistic); window-HEEB ranks x2 > x1 > x3.")
}

// endToEnd joins two stationary streams under a sliding window and shows the
// windowed HEEB outperforming PROB and LIFE.
func endToEnd() {
	// Skewed stationary streams: a few hot values, many cold ones.
	p := stochstream.NewTable(0, []float64{30, 20, 15, 10, 8, 6, 4, 3, 2, 2})
	r := &stochstream.Stationary{P: p}
	s := &stochstream.Stationary{P: p}
	const n = 6000
	rng := stochstream.NewRNG(11)
	rVals := r.Generate(rng, n)
	sVals := s.Generate(rng, n)

	cfg := stochstream.JoinConfig{
		CacheSize: 4,
		Window:    12, // sliding-window semantics
		Warmup:    -1,
		Procs:     [2]stochstream.Process{r, s},
	}
	lifetime := func(now int, tp stochstream.Tuple) int {
		return tp.Arrived + cfg.Window - now
	}

	// LifetimeEstimate defaults to the cache size — with only 4 slots,
	// tuples live a few steps, so α must weigh the near future heavily.
	heeb := stochstream.NewHEEB(stochstream.HEEBOptions{Mode: stochstream.HEEBDirect})
	heebRes := stochstream.RunJoin(rVals, sVals, heeb, cfg, 3)
	probRes := stochstream.RunJoin(rVals, sVals, &stochstream.ProbPolicy{Lifetime: lifetime}, cfg, 3)
	lifeRes := stochstream.RunJoin(rVals, sVals, &stochstream.LifePolicy{Lifetime: lifetime}, cfg, 3)
	opt := stochstream.OptOfflineJoin(rVals, sVals, cfg.CacheSize, cfg.Window)

	fmt.Println("windowed join (window 25, cache 4, skewed stationary streams):")
	fmt.Printf("  OPT-offline: %d\n", opt.CountAfter(cfg.EffectiveWarmup()-1))
	fmt.Printf("  HEEB       : %d\n", heebRes.Joins)
	fmt.Printf("  PROB       : %d\n", probRes.Joins)
	fmt.Printf("  LIFE       : %d\n", lifeRes.Joins)
}
