// Tempcache: the paper's REAL scenario as an application. A temperature
// stream references a database relation of projected energy-consumption
// levels keyed by 0.1 °C bucket; a small cache of database tuples serves the
// lookups. We fit an AR(1) model to an observed prefix with maximum
// likelihood (the paper's offline MLE step), precompute HEEB's h2 surface
// from the fit, and replay the remainder comparing HEEB against LRU,
// perfect LFU, RAND and the offline-optimal LFD.
package main

import (
	"fmt"
	"log"

	"stochstream"
)

func main() {
	// Synthetic Melbourne-like temperatures from the paper's published fit
	// (see DESIGN.md for the data substitution note).
	rw, err := stochstream.Real().Build(stochstream.NewRNG(2024))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference stream: %d days of temperatures (0.1 °C buckets)\n", len(rw.Refs))
	fmt.Printf("fitted AR(1): X_t = %.2f + %.3f·X_{t-1} + N(0, %.2f²)\n",
		rw.Fit.Phi0, rw.Fit.Phi1, rw.Fit.Sigma)
	fmt.Printf("   long-run mean %.1f °C, stdev %.1f °C\n\n",
		rw.Fit.StationaryMean()/10, rw.Fit.StationaryStdDev()/10)

	const capacity = 100
	cfg := stochstream.CacheConfig{Capacity: capacity}
	policies := []stochstream.CachePolicy{
		&stochstream.LFD{},
		&stochstream.CacheHEEB{Model: rw.Model}, // h2 surface, Lexp(α = capacity)
		&stochstream.LRU{},
		&stochstream.LFU{},
		&stochstream.LRUK{K: 2},
		&stochstream.CacheRand{},
	}
	fmt.Printf("cache of %d database tuples over %d references:\n", capacity, len(rw.Refs))
	var lfdMisses int
	for i, p := range policies {
		res := stochstream.RunCache(rw.Refs, p, cfg, 5)
		if i == 0 {
			lfdMisses = res.Misses
		}
		extra := ""
		if i > 0 && lfdMisses > 0 {
			extra = fmt.Sprintf("  (+%.1f%% vs offline optimum)",
				100*float64(res.Misses-lfdMisses)/float64(lfdMisses))
		}
		fmt.Printf("  %-10s misses=%5d  hit rate=%5.1f%%%s\n",
			p.Name(), res.Misses, 100*float64(res.Hits)/float64(len(rw.Refs)), extra)
	}
}
