// Adaptive: the full deployment pipeline. The paper assumes known stream
// statistics; this example closes the loop by *learning* them. It observes a
// prefix of each input stream, runs model detection (trend vs random walk vs
// AR(1) vs stationary), builds HEEB from the detected models, and joins the
// remainder — comparing against RAND and against HEEB given the true models.
package main

import (
	"fmt"
	"log"

	"stochstream"
)

func main() {
	// Collect telemetry for the whole pipeline; the snapshot printed at exit
	// doubles as an integration smoke test of the observability layer.
	reg := stochstream.EnableTelemetry()

	// Ground-truth generators (unknown to the pipeline).
	truthR := &stochstream.LinearTrend{Slope: 1, Intercept: -1, Noise: stochstream.BoundedNormal(2, 12)}
	truthS := &stochstream.LinearTrend{Slope: 1, Intercept: 0, Noise: stochstream.BoundedNormal(3, 15)}

	const observe, run = 600, 4000
	rng := stochstream.NewRNG(99)
	rAll := truthR.Generate(rng, observe+run)
	sAll := truthS.Generate(rng, observe+run)

	// 1. Learn models from the observed prefixes.
	repR, err := stochstream.DetectModel(rAll[:observe])
	if err != nil {
		log.Fatal(err)
	}
	repS, err := stochstream.DetectModel(sAll[:observe])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model detection on 600-tuple prefixes:")
	fmt.Printf("  stream R: %s\n", repR.Describe())
	fmt.Printf("  stream S: %s\n", repS.Describe())

	// 2. Join the remaining tuples with HEEB driven by the learned models.
	r, s := rAll[observe:], sAll[observe:]
	// Rebase moves the detected models' time origin to the start of the
	// replayed segment (the simulator clock restarts at zero there).
	learned := stochstream.JoinConfig{
		CacheSize: 10,
		Warmup:    -1,
		Procs:     [2]stochstream.Process{repR.Rebase(observe), repS.Rebase(observe)},
	}
	heebLearned := stochstream.RunJoin(r, s, stochstream.NewHEEB(stochstream.HEEBOptions{
		Mode: stochstream.HEEBDirect, LifetimeEstimate: 5, Adaptive: true,
	}), learned, 1)

	// 3. References: HEEB with the true models, and RAND.
	truth := learned
	truth.Procs = [2]stochstream.Process{
		&stochstream.LinearTrend{Slope: 1, Intercept: observe - 1, Noise: stochstream.BoundedNormal(2, 12)},
		&stochstream.LinearTrend{Slope: 1, Intercept: observe, Noise: stochstream.BoundedNormal(3, 15)},
	}
	heebTruth := stochstream.RunJoin(r, s, stochstream.NewHEEB(stochstream.HEEBOptions{
		Mode: stochstream.HEEBDirect, LifetimeEstimate: 5,
	}), truth, 1)
	randRes := stochstream.RunJoin(r, s, &stochstream.RandPolicy{}, learned, 1)
	opt := stochstream.OptOfflineJoin(r, s, learned.CacheSize, 0)
	optJoins := opt.CountAfter(learned.EffectiveWarmup() - 1)

	fmt.Println("\njoining the remaining 4000 tuples (cache 10):")
	fmt.Printf("  OPT-offline            : %d\n", optJoins)
	fmt.Printf("  HEEB (true models)     : %d (%.0f%% of OPT)\n", heebTruth.Joins, pct(heebTruth.Joins, optJoins))
	fmt.Printf("  HEEB (learned models)  : %d (%.0f%% of OPT)\n", heebLearned.Joins, pct(heebLearned.Joins, optJoins))
	fmt.Printf("  RAND                   : %d (%.0f%% of OPT)\n", randRes.Joins, pct(randRes.Joins, optJoins))
	fmt.Println("\nlearned models recover nearly all of the benefit of knowing the")
	fmt.Println("true stream statistics — the framework degrades gracefully when")
	fmt.Println("statistics must be estimated online.")

	// Telemetry snapshot: where the time went and what the policies decided.
	snap := reg.Snapshot()
	stepLat := snap.Histograms["join_step_latency_ns"]
	fmt.Println("\ntelemetry snapshot at exit:")
	fmt.Printf("  steps=%d results=%d evictions=%d\n",
		snap.Counters["join_steps_total"], snap.Counters["join_results_total"], snap.Counters["join_evictions_total"])
	fmt.Printf("  step latency p50=%.0fns p90=%.0fns p99=%.0fns\n", stepLat.P50, stepLat.P90, stepLat.P99)
	fmt.Printf("  decision-trace records retained: %d\n", len(snap.Trace))
	if len(snap.Trace) > 0 {
		last := snap.Trace[len(snap.Trace)-1]
		fmt.Printf("  last decision: step %d, %s scored %d candidates, evicted %d\n",
			last.Step, last.Policy, len(last.Candidates), last.Need)
	}
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
