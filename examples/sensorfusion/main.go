// Sensorfusion: correlate two sensor feeds that measure the same drifting
// phenomenon with different noise levels and report how HEEB divides the
// cache between them — the paper's memory-allocation study (Figures 14,
// 17–18) as an application.
//
// Scenario: two vibration sensors on the same machine shaft emit one reading
// per tick. A maintenance dashboard wants every pair of equal readings
// across the two feeds (an equijoin on the quantized reading). Memory for
// the join state is limited, so replacement policy quality directly controls
// how many correlated pairs the dashboard sees.
package main

import (
	"fmt"

	"stochstream"
)

func run(name string, lagR int, sSigma float64) {
	r := &stochstream.LinearTrend{Slope: 1, Intercept: -lagR, Noise: stochstream.BoundedNormal(1, 15)}
	s := &stochstream.LinearTrend{Slope: 1, Intercept: 0, Noise: stochstream.BoundedNormal(sSigma, 15)}
	const n = 4000
	rng := stochstream.NewRNG(7)
	rVals := r.Generate(rng, n)
	sVals := s.Generate(rng, n)

	cfg := stochstream.JoinConfig{
		CacheSize:      12,
		Warmup:         -1,
		Procs:          [2]stochstream.Process{r, s},
		TrackOccupancy: true,
	}
	heeb := stochstream.NewHEEB(stochstream.HEEBOptions{
		Mode:             stochstream.HEEBDirect,
		LifetimeEstimate: 1 + sSigma,
	})
	res := stochstream.RunJoin(rVals, sVals, heeb, cfg, 1)

	// Average fraction of the cache HEEB devotes to sensor R after warm-up.
	var frac float64
	count := 0
	for t := cfg.EffectiveWarmup(); t < len(res.OccupancyR); t++ {
		frac += res.OccupancyR[t]
		count++
	}
	frac /= float64(count)

	prob := stochstream.RunJoin(rVals, sVals, &stochstream.ProbPolicy{}, cfg, 1)
	fmt.Printf("%-28s pairs(HEEB)=%4d  pairs(PROB)=%4d  cache share of R=%4.1f%%\n",
		name, res.Joins, prob.Joins, 100*frac)
}

func main() {
	fmt.Println("correlating two vibration sensors through a 12-tuple join cache:")
	run("identical sensors", 0, 1)
	run("sensor R reports 2 ticks late", 2, 1)
	run("sensor R reports 4 ticks late", 4, 1)
	run("sensor S twice as noisy", 0, 2)
	run("sensor S four times as noisy", 0, 4)
	fmt.Println()
	fmt.Println("HEEB gives less cache to the lagging stream (its tuples can no")
	fmt.Println("longer match future arrivals) and to the noisier stream (whose")
	fmt.Println("outlying tuples fall behind the partner's reachable window).")
}
