// Multiway: several binary join queries over multiple streams sharing one
// cache — the extension sketched in the paper's appendix ("in the case of
// multiple binary joins, this expected benefit is a summary of each expected
// benefit of the binary join with one partner stream").
//
// Scenario: a market-data hub. A "trades" stream is joined against both a
// "quotes" stream and a "news" stream on a quantized price level; quotes and
// news are not joined with each other. All join state shares one small
// cache, so the policy must decide not only which tuples to keep but
// implicitly how to divide memory among streams of different worth.
package main

import (
	"fmt"
	"log"

	"stochstream"
)

func main() {
	mk := func(sigma float64) stochstream.Process {
		return &stochstream.LinearTrend{Slope: 1, Intercept: 0, Noise: stochstream.BoundedNormal(sigma, 12)}
	}
	cfg := stochstream.MultiJoinConfig{
		// Stream 0 = trades (the hub), 1 = quotes, 2 = news.
		Procs:     []stochstream.Process{mk(1.5), mk(2), mk(3)},
		Edges:     []stochstream.MultiJoinEdge{{A: 0, B: 1}, {A: 0, B: 2}},
		CacheSize: 12,
		Warmup:    -1,
	}
	rng := stochstream.NewRNG(77)
	streams := make([][]int, len(cfg.Procs))
	for i := range streams {
		streams[i] = cfg.Procs[i].Generate(rng, 4000)
	}

	heeb, err := stochstream.RunMultiJoin(streams, &stochstream.MultiHEEB{Alpha: stochstream.AlphaForLifetime(5)}, cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	rand, err := stochstream.RunMultiJoin(streams, &stochstream.MultiRand{}, cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	prob, err := stochstream.RunMultiJoin(streams, &stochstream.MultiProb{}, cfg, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("two joins (trades⋈quotes, trades⋈news) through one 12-tuple cache:")
	fmt.Printf("  %-6s total=%5d  trades⋈quotes=%5d  trades⋈news=%5d\n",
		"HEEB", heeb.Joins, heeb.PerEdge[0], heeb.PerEdge[1])
	fmt.Printf("  %-6s total=%5d  trades⋈quotes=%5d  trades⋈news=%5d\n",
		"RAND", rand.Joins, rand.PerEdge[0], rand.PerEdge[1])
	fmt.Printf("  %-6s total=%5d  trades⋈quotes=%5d  trades⋈news=%5d\n",
		"PROB", prob.Joins, prob.PerEdge[0], prob.PerEdge[1])
	fmt.Println()
	fmt.Printf("HEEB's cache split (trades/quotes/news): %.0f%% / %.0f%% / %.0f%%\n",
		100*heeb.Occupancy[0], 100*heeb.Occupancy[1], 100*heeb.Occupancy[2])
	fmt.Printf("RAND's cache split                     : %.0f%% / %.0f%% / %.0f%%\n",
		100*rand.Occupancy[0], 100*rand.Occupancy[1], 100*rand.Occupancy[2])
	fmt.Println()
	fmt.Println("a trades tuple can pay off twice (against quotes AND news), so")
	fmt.Println("HEEB's summed per-partner scores give the hub stream the larger")
	fmt.Println("share of the cache; RAND splits it evenly and produces fewer pairs.")
}
