package stochstream

import (
	"bytes"
	"strings"
	"testing"
)

// The facade tests exercise the public API end-to-end, the way a downstream
// user would.

func TestPublicJoinPipeline(t *testing.T) {
	r := &LinearTrend{Slope: 1, Intercept: -1, Noise: BoundedNormal(1, 10)}
	s := &LinearTrend{Slope: 1, Intercept: 0, Noise: BoundedNormal(2, 15)}
	rng := NewRNG(1)
	rv := r.Generate(rng, 1500)
	sv := s.Generate(rng, 1500)
	cfg := JoinConfig{CacheSize: 10, Warmup: -1, Procs: [2]Process{r, s}}

	heeb := RunJoin(rv, sv, NewHEEB(HEEBOptions{Mode: HEEBDirect, LifetimeEstimate: 3}), cfg, 2)
	rnd := RunJoin(rv, sv, &RandPolicy{}, cfg, 2)
	opt := OptOfflineJoin(rv, sv, cfg.CacheSize, 0)
	optJoins := opt.CountAfter(cfg.EffectiveWarmup() - 1)

	if !(heeb.Joins > rnd.Joins) {
		t.Fatalf("HEEB %d <= RAND %d", heeb.Joins, rnd.Joins)
	}
	if heeb.Joins > optJoins {
		t.Fatalf("HEEB %d above OPT %d", heeb.Joins, optJoins)
	}
}

func TestPublicCachePipeline(t *testing.T) {
	rw, err := Real().Build(NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := CacheConfig{Capacity: 80}
	lfd := RunCache(rw.Refs, &LFD{}, cfg, 1)
	heeb := RunCache(rw.Refs, &CacheHEEB{Model: rw.Model}, cfg, 1)
	lru := RunCache(rw.Refs, &LRU{}, cfg, 1)
	if lfd.Misses > heeb.Misses || lfd.Misses > lru.Misses {
		t.Fatalf("LFD not optimal: %d vs %d/%d", lfd.Misses, heeb.Misses, lru.Misses)
	}
	if heeb.Misses >= lru.Misses {
		t.Fatalf("HEEB misses %d >= LRU %d on AR(1) stream", heeb.Misses, lru.Misses)
	}
}

func TestPublicECBAndDominance(t *testing.T) {
	partner := &Stationary{P: NewTable(0, []float64{1, 3})}
	h := NewHistory(0)
	hot := JoinECB(partner, h, 1, 10)
	cold := JoinECB(partner, h, 0, 10)
	if !Dominates(hot, cold) || !StronglyDominates(hot, cold) {
		t.Fatal("dominance broken through the facade")
	}
	if got := DominatedSubset([]ECB{hot, cold}, 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DominatedSubset = %v", got)
	}
}

func TestPublicHEEBScores(t *testing.T) {
	partner := &Stationary{P: NewUniform(0, 9)}
	h := NewHistory(0)
	in := JoinH(partner, h, 5, LExp{Alpha: 5}, 0)
	out := JoinH(partner, h, 42, LExp{Alpha: 5}, 0)
	if !(in > 0 && out == 0) {
		t.Fatalf("JoinH = %v / %v", in, out)
	}
	ref := &Stationary{P: NewUniform(0, 1)}
	if got := CacheH(ref, h, 0, LInf{}, 5000); got < 0.999 {
		t.Fatalf("CacheH = %v, want ~1", got)
	}
	walk := &GaussianWalk{Sigma: 1}
	if got := MarginalH(walk, 0, 0, LExp{Alpha: 10}, 0); got <= 0 {
		t.Fatalf("MarginalH = %v", got)
	}
}

func TestPublicPrecompute(t *testing.T) {
	walk := &GaussianWalk{Sigma: 1}
	h1, err := PrecomputeH1(walk, LExp{Alpha: 10}, -20, 20, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h1.At(0, 0) <= h1.At(0, 15) {
		t.Fatal("h1 shape wrong")
	}
	ar := &AR1{Phi0: 5, Phi1: 0.6, Sigma: 3, Init: 12}
	h2, err := PrecomputeH2(ar, LExp{Alpha: 20}, 0, 30, 0, 30, 5, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h2.At(12, 12) <= h2.At(12, 30) {
		t.Fatal("h2 shape wrong")
	}
}

func TestPublicReduction(t *testing.T) {
	refs := []int{1, 2, 1, 3, 1}
	r, s := ReduceCachingToJoining(refs)
	if len(r) != 5 || len(s) != 5 {
		t.Fatal("reduction length")
	}
	if s[0] != r[2] {
		t.Fatal("supply tuple must match next occurrence")
	}
}

func TestPublicFitAR1(t *testing.T) {
	g := NewRNG(4)
	series := make([]float64, 5000)
	x := 0.0
	for i := range series {
		x = 1 + 0.5*x + g.NormFloat64()
		series[i] = x
	}
	fit, err := FitAR1(series)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Phi1 < 0.4 || fit.Phi1 > 0.6 {
		t.Fatalf("Phi1 = %v", fit.Phi1)
	}
	if a := AlphaForLifetime(10); a <= 0 {
		t.Fatalf("alpha = %v", a)
	}
}

func TestPublicFigureRegistry(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 16 {
		t.Fatalf("FigureIDs = %v", ids)
	}
	var buf bytes.Buffer
	o := DefaultExperimentOptions()
	if err := Figure("7", o, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TOWER") {
		t.Fatalf("figure 7 output missing TOWER:\n%s", buf.String())
	}
	err := Figure("99", o, &buf)
	if err == nil {
		t.Fatal("unknown figure should error")
	}
	if _, ok := err.(*UnknownFigureError); !ok {
		t.Fatalf("error type = %T", err)
	}
	if !strings.Contains(err.Error(), "99") {
		t.Fatalf("error message = %q", err)
	}
}

func TestPublicWorkloads(t *testing.T) {
	for _, w := range []JoinWorkload{Tower().Join(), Roof().Join(), Floor().Join(), Walk()} {
		r, s := w.Generate(NewRNG(1), 100)
		if len(r) != 100 || len(s) != 100 {
			t.Fatalf("%s generation broken", w.Name)
		}
	}
}

func TestPublicFlowGraph(t *testing.T) {
	g := NewFlowGraph(3)
	g.AddArc(0, 1, 1, 2)
	g.AddArc(1, 2, 1, 3)
	res, err := g.MinCostFlow(0, 2, 1)
	if err != nil || res.Flow != 1 || res.Cost != 5 {
		t.Fatalf("res = %+v err = %v", res, err)
	}
}

func TestPublicSpline(t *testing.T) {
	sp, err := NewSpline([]float64{0, 1, 2}, []float64{0, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.At(1); got != 1 {
		t.Fatalf("spline At(1) = %v", got)
	}
}

func TestPublicWindowedJoin(t *testing.T) {
	p := NewUniform(0, 4)
	r := &Stationary{P: p}
	s := &Stationary{P: p}
	rng := NewRNG(6)
	rv := r.Generate(rng, 1000)
	sv := s.Generate(rng, 1000)
	base := JoinConfig{CacheSize: 3, Warmup: 0, Procs: [2]Process{r, s}}
	win := base
	win.Window = 5
	full := RunJoin(rv, sv, NewHEEB(HEEBOptions{}), base, 1)
	clipped := RunJoin(rv, sv, NewHEEB(HEEBOptions{}), win, 1)
	if clipped.Joins > full.Joins {
		t.Fatalf("window increased joins: %d > %d", clipped.Joins, full.Joins)
	}
}
