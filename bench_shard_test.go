package stochstream

import (
	"testing"

	"stochstream/internal/dist"
	"stochstream/internal/engine"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/shardrt"
	"stochstream/internal/stats"
)

// Sharded-runtime benchmarks (BENCH_shard.json): all of them measure one
// steady-state global step — cache full, every step probes, scores and
// evicts — under the hot-path HEEB configuration, with a fixed total cache
// budget of 256 slots.
//
// The scaling argument is algorithmic, not parallel: replacement scoring is
// linear in the cache the decision runs over, so splitting one 256-slot
// cache into N shards means a global step scores ~2·256/N candidates
// instead of ~256. BenchmarkShardedStep8 vs BenchmarkShardedBaseline is the
// recorded ≥3x gate (scripts/benchcmp.sh -scale mode); the per-shard worker
// goroutines add channel hops but the win does not depend on extra cores.
//
// BenchmarkStepLoop256 vs BenchmarkStepBatch256 pins the enabling refactor:
// batching the ingress amortizes the per-step clock reads and telemetry
// flushes, so StepBatch must never be slower than the equivalent Step loop
// (the -overhead gate in the same baseline file).

const (
	shardBenchCache = 256
	shardBenchBatch = 64
)

func shardBenchProcs() [2]process.Process {
	return [2]process.Process{
		&process.LinearTrend{Slope: 1, Intercept: -1, Noise: dist.BoundedNormal(2, 12)},
		&process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(3, 15)},
	}
}

func shardBenchStream(n int) ([]int, []int) {
	procs := shardBenchProcs()
	rng := stats.NewRNG(21)
	return procs[0].Generate(rng.Split(), n), procs[1].Generate(rng.Split(), n)
}

// benchmarkStepLoop measures the single operator driven one Step at a time.
func BenchmarkStepLoop256(b *testing.B) {
	warm := shardBenchCache + shardBenchBatch
	n := warm + b.N
	r, s := shardBenchStream(n)
	j, err := engine.NewJoin(engine.Config{
		CacheSize: shardBenchCache,
		Procs:     shardBenchProcs(),
		Policy:    policy.NewHEEB(hotOpts()),
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for t := 0; t < warm; t++ {
		j.Step(engine.Tuple{Key: r[t]}, engine.Tuple{Key: s[t]})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for t := warm; t < n; t++ {
		j.Step(engine.Tuple{Key: r[t]}, engine.Tuple{Key: s[t]})
	}
}

// BenchmarkStepBatch256 is the same stream through StepBatch in
// shardBenchBatch-sized chunks; the gate requires it no slower than the
// loop.
func BenchmarkStepBatch256(b *testing.B) {
	warm := shardBenchCache + shardBenchBatch
	n := warm + b.N
	r, s := shardBenchStream(n)
	j, err := engine.NewJoin(engine.Config{
		CacheSize: shardBenchCache,
		Procs:     shardBenchProcs(),
		Policy:    policy.NewHEEB(hotOpts()),
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]engine.TuplePair, 0, shardBenchBatch)
	feed := func(lo, hi int) {
		for lo < hi {
			k := hi
			if k > lo+shardBenchBatch {
				k = lo + shardBenchBatch
			}
			batch = batch[:0]
			for t := lo; t < k; t++ {
				batch = append(batch, engine.TuplePair{
					R: engine.Tuple{Key: r[t]},
					S: engine.Tuple{Key: s[t]},
				})
			}
			j.StepBatch(batch)
			lo = k
		}
	}
	feed(0, warm)
	b.ReportAllocs()
	b.ResetTimer()
	feed(warm, n)
}

// BenchmarkShardedBaseline is the single-engine baseline the sharded gate
// compares against: the identical stream, budget and policy configuration,
// batched exactly like the sharded runtime's ingress.
func BenchmarkShardedBaseline(b *testing.B) { BenchmarkStepBatch256(b) }

func benchmarkSharded(b *testing.B, shards int) {
	rt, err := shardrt.New(shardrt.Config{
		Shards:     shards,
		TotalCache: shardBenchCache,
		Procs:      shardBenchProcs(),
		NewPolicy:  func(int) join.Policy { return policy.NewHEEB(hotOpts()) },
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	// Warm until every shard's cache is full even under routing skew.
	warm := 2 * shardBenchCache
	n := warm + b.N
	r, s := shardBenchStream(n)
	steps := make([]shardrt.Step, n)
	for t := range steps {
		steps[t] = shardrt.Step{R: engine.Tuple{Key: r[t]}, S: engine.Tuple{Key: s[t]}}
	}
	feed := func(lo, hi int) {
		for lo < hi {
			k := hi
			if k > lo+shardBenchBatch {
				k = lo + shardBenchBatch
			}
			if _, err := rt.IngestBatch(steps[lo:k]); err != nil {
				b.Fatal(err)
			}
			lo = k
		}
	}
	feed(0, warm)
	b.ReportAllocs()
	b.ResetTimer()
	feed(warm, n)
}

func BenchmarkShardedStep1(b *testing.B) { benchmarkSharded(b, 1) }
func BenchmarkShardedStep2(b *testing.B) { benchmarkSharded(b, 2) }
func BenchmarkShardedStep4(b *testing.B) { benchmarkSharded(b, 4) }
func BenchmarkShardedStep8(b *testing.B) { benchmarkSharded(b, 8) }
