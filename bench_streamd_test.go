package stochstream

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"stochstream/internal/engine"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/shardrt"
	"stochstream/internal/streamd"
	"stochstream/internal/streamd/client"
	"stochstream/internal/streamd/wire"
)

// Daemon benchmarks (BENCH_streamd.json): the cost of putting the network
// front-end between a client and the 8-shard runtime, measured per 64-step
// batch at steady state under the hot-path HEEB configuration — the same
// workload shape as the sharded-runtime benchmarks.
//
// BenchmarkStreamdDirect is the in-process floor: shardrt.IngestBatch
// called directly. BenchmarkStreamdDaemon pushes the identical batches
// through a loopback TCP session — framing, sequence accounting, credit
// flow, telemetry — and the -overhead gate in scripts/benchcmp.sh requires
// its median no more than BENCH_streamd.json's overhead_budget_percent
// (15%) above the direct call. BenchmarkStreamdDaemon64 records the same
// daemon under 64 concurrent sessions: the engine loop serializes the
// runtime, so per-batch wall time holding near the single-session figure is
// the fairness/pipelining result the baseline file documents.

const streamdBenchBatch = 64

func streamdBenchRuntime() shardrt.Config {
	return shardrt.Config{
		Shards:     8,
		TotalCache: shardBenchCache,
		Procs:      shardBenchProcs(),
		NewPolicy:  func(int) join.Policy { return policy.NewHEEB(hotOpts()) },
		Seed:       1,
	}
}

// streamdBenchSteps pre-builds n batches in both representations from the
// same generated stream, so direct and daemon runs ingest identical keys.
func streamdBenchSteps(nBatches int) ([][]shardrt.Step, [][]wire.Step) {
	n := nBatches * streamdBenchBatch
	r, s := shardBenchStream(n)
	direct := make([][]shardrt.Step, nBatches)
	wired := make([][]wire.Step, nBatches)
	for b := 0; b < nBatches; b++ {
		ds := make([]shardrt.Step, streamdBenchBatch)
		ws := make([]wire.Step, streamdBenchBatch)
		for i := 0; i < streamdBenchBatch; i++ {
			t := b*streamdBenchBatch + i
			ds[i] = shardrt.Step{R: engine.Tuple{Key: r[t]}, S: engine.Tuple{Key: s[t]}}
			ws[i] = wire.Step{RKey: int64(r[t]), SKey: int64(s[t])}
		}
		direct[b] = ds
		wired[b] = ws
	}
	return direct, wired
}

// streamdWarmBatches fills every shard cache before timing starts.
const streamdWarmBatches = 2 * shardBenchCache / streamdBenchBatch

func BenchmarkStreamdDirect(b *testing.B) {
	rt, err := shardrt.New(streamdBenchRuntime())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	direct, _ := streamdBenchSteps(streamdWarmBatches + b.N)
	for i := 0; i < streamdWarmBatches; i++ {
		if _, err := rt.IngestBatch(direct[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.IngestBatch(direct[streamdWarmBatches+i]); err != nil {
			b.Fatal(err)
		}
	}
}

func streamdBenchServer(b *testing.B) *streamd.Server {
	b.Helper()
	srv, err := streamd.Start(streamd.Config{
		Runtime: streamdBenchRuntime(),
		Listen:  "127.0.0.1:0",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	return srv
}

func BenchmarkStreamdDaemon(b *testing.B) {
	srv := streamdBenchServer(b)
	cl, err := client.Dial(client.Options{Addr: srv.Addr(), Session: "bench", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	_, wired := streamdBenchSteps(streamdWarmBatches + b.N)
	for i := 0; i < streamdWarmBatches; i++ {
		if _, err := cl.Ingest(wired[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Ingest(wired[streamdWarmBatches+i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamdDaemon64 shares one daemon between 64 concurrent
// sessions, each synchronous with its own batch sequence. The runtime is
// still one engine loop, so this measures admission fairness and pipelining
// under contention, not parallel speedup.
func BenchmarkStreamdDaemon64(b *testing.B) {
	srv := streamdBenchServer(b)
	_, wired := streamdBenchSteps(streamdWarmBatches + 1)
	// Warm the shard caches once before the contended phase.
	cl, err := client.Dial(client.Options{Addr: srv.Addr(), Session: "bench-warm", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < streamdWarmBatches; i++ {
		if _, err := cl.Ingest(wired[i]); err != nil {
			b.Fatal(err)
		}
	}
	_ = cl.Close()

	// RunParallel spawns parallelism × GOMAXPROCS goroutines; aim for 64
	// sessions total.
	par := 64 / runtime.GOMAXPROCS(0)
	if par < 1 {
		par = 1
	}
	var sessionID atomic.Int64
	b.SetParallelism(par)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := sessionID.Add(1)
		cl, err := client.Dial(client.Options{
			Addr:    srv.Addr(),
			Session: fmt.Sprintf("bench-%d", id),
			Seed:    uint64(id),
		})
		if err != nil {
			b.Error(err)
			return
		}
		defer func() { _ = cl.Close() }()
		batch := wired[streamdWarmBatches]
		for pb.Next() {
			if _, err := cl.Ingest(batch); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
